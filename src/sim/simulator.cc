#include "sim/simulator.h"

#include <cassert>
#include <utility>

#include "sim/tracer.h"

namespace sim {

Simulator::Simulator() : tracer_(std::make_unique<Tracer>()) {}
Simulator::~Simulator() = default;

EventId Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  assert(fn && "scheduling an empty callback");
  if (when < now_) when = now_;  // never schedule into the past
  EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  if (pending_.contains(id)) cancelled_.insert(id);
}

bool Simulator::PopNext(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move out via const_cast is fragile,
    // so copy the small fields and move the closure through a local.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    pending_.erase(e.id);
    if (cancelled_.erase(e.id) > 0) continue;  // lazily dropped
    out = std::move(e);
    return true;
  }
  return false;
}

std::size_t Simulator::Run() {
  stopped_ = false;
  std::size_t fired = 0;
  Entry e;
  while (!stopped_ && PopNext(e)) {
    now_ = e.when;
    e.fn();
    ++fired;
    ++events_processed_;
  }
  return fired;
}

std::size_t Simulator::RunUntil(TimePoint t) {
  stopped_ = false;
  std::size_t fired = 0;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.top().when > t) break;
    Entry e;
    if (!PopNext(e)) break;
    if (e.when > t) {
      // Re-insert: the popped entry is beyond the horizon (only possible when
      // the heap head was cancelled and the next live entry is later).
      pending_.insert(e.id);
      queue_.push(std::move(e));
      break;
    }
    now_ = e.when;
    e.fn();
    ++fired;
    ++events_processed_;
  }
  if (now_ < t) now_ = t;
  return fired;
}

}  // namespace sim
