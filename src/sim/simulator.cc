#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/metrics.h"
#include "sim/profiler.h"
#include "sim/tracer.h"

namespace sim {

// The seam between the Simulator's run loop and the two queue
// implementations. Ids are allocated by the queue (the wheel encodes pool
// locations in them); ordering is always (when, seq).
class Simulator::EventQueue {
 public:
  virtual ~EventQueue() = default;
  virtual EventId Push(TimePoint when, std::uint64_t seq,
                       std::function<void()> fn) = 0;
  // Returns true if `id` was pending (and is now cancelled).
  virtual bool Cancel(EventId id) = 0;
  virtual bool Contains(EventId id) const = 0;
  // Pops the earliest live entry if it is due at or before `horizon`.
  virtual bool PopDueBefore(TimePoint horizon, TimePoint* when,
                            std::function<void()>* fn) = 0;
  virtual std::size_t live() const = 0;
  virtual std::size_t dead() const = 0;
};

// --- binary heap (ablation baseline) ----------------------------------------
//
// The original std::priority_queue scheduler, restated over a raw vector so
// dead entries can be compacted. Cancel is lazy — it marks the id dead — but
// no longer unbounded: whenever dead entries exceed half the queue, the live
// entries are filtered out and re-heapified, so queue space and pop cost stay
// proportional to live timers.
class Simulator::HeapQueue final : public EventQueue {
 public:
  explicit HeapQueue(MetricsRegistry& metrics)
      : dead_gauge_(metrics.gauge("sim.scheduler_dead_entries")),
        compactions_(metrics.counter("sim.scheduler_compactions")) {}

  EventId Push(TimePoint when, std::uint64_t seq,
               std::function<void()> fn) override {
    const EventId id = next_id_++;
    heap_.push_back(Entry{when, seq, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    pending_.insert(id);
    return id;
  }

  bool Cancel(EventId id) override {
    if (pending_.erase(id) == 0) return false;
    cancelled_.insert(id);
    dead_gauge_.Set(static_cast<std::int64_t>(cancelled_.size()));
    MaybeCompact();
    return true;
  }

  bool Contains(EventId id) const override { return pending_.contains(id); }

  bool PopDueBefore(TimePoint horizon, TimePoint* when,
                    std::function<void()>* fn) override {
    DropDeadHead();
    if (heap_.empty() || heap_.front().when > horizon) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(e.id);
    *when = e.when;
    *fn = std::move(e.fn);
    return true;
  }

  std::size_t live() const override { return pending_.size(); }
  std::size_t dead() const override { return cancelled_.size(); }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void DropDeadHead() {
    while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
      cancelled_.erase(heap_.front().id);
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
    dead_gauge_.Set(static_cast<std::int64_t>(cancelled_.size()));
  }

  void MaybeCompact() {
    if (cancelled_.size() * 2 <= heap_.size()) return;
    std::erase_if(heap_,
                  [this](const Entry& e) { return cancelled_.contains(e.id); });
    cancelled_.clear();
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    compactions_.Inc();
    dead_gauge_.Set(0);
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  Gauge& dead_gauge_;
  Counter& compactions_;
};

// --- hierarchical timing wheel (default) ------------------------------------
class Simulator::WheelQueue final : public EventQueue {
 public:
  explicit WheelQueue(MetricsRegistry& metrics)
      : cascades_(metrics.counter("sim.timer_cascades")) {}

  EventId Push(TimePoint when, std::uint64_t seq,
               std::function<void()> fn) override {
    return wheel_.Schedule(when, seq, std::move(fn));
  }

  bool Cancel(EventId id) override { return wheel_.Cancel(id); }
  bool Contains(EventId id) const override { return wheel_.Contains(id); }

  bool PopDueBefore(TimePoint horizon, TimePoint* when,
                    std::function<void()>* fn) override {
    const bool popped = wheel_.PopDueBefore(horizon, when, fn);
    const std::uint64_t moves = wheel_.cascade_moves();
    cascades_.Inc(moves - reported_moves_);
    reported_moves_ = moves;
    return popped;
  }

  std::size_t live() const override { return wheel_.size(); }
  std::size_t dead() const override { return 0; }  // cancellation is eager

 private:
  TimerWheel wheel_;
  Counter& cascades_;
  std::uint64_t reported_moves_ = 0;
};

// --- Simulator ---------------------------------------------------------------

SchedulerImpl Simulator::DefaultSchedulerImpl() {
  const char* env = std::getenv("PLEXUS_SCHED");
  if (env != nullptr && std::string_view(env) == "heap") {
    return SchedulerImpl::kHeap;
  }
  return SchedulerImpl::kWheel;
}

Simulator::Simulator(SchedulerImpl impl)
    : impl_(impl),
      metrics_(std::make_unique<MetricsRegistry>()),
      tracer_(std::make_unique<Tracer>()) {
  schedules_ctr_ = &metrics_->counter("sim.timer_schedules");
  cancels_ctr_ = &metrics_->counter("sim.timer_cancels");
  fires_ctr_ = &metrics_->counter("sim.timer_fires");
  pending_gauge_ = &metrics_->gauge("sim.timer_pending");
  pending_peak_ = &metrics_->gauge("sim.timer_pending_peak");
  delay_hist_ = &metrics_->histogram("sim.timer_delay_ns");
  if (impl_ == SchedulerImpl::kHeap) {
    queue_ = std::make_unique<HeapQueue>(*metrics_);
  } else {
    queue_ = std::make_unique<WheelQueue>(*metrics_);
  }
  // Ring overflow surfaces as sim.tracer_dropped; resolution is lazy (first
  // drop) so drop-free runs keep byte-identical metrics snapshots.
  tracer_->SetDropRegistry(metrics_.get());
}

Simulator::~Simulator() = default;

EventId Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  PLEXUS_PROFILE_SCOPE(kTimerSchedule);
  assert(fn && "scheduling an empty callback");
  if (when < now_) when = now_;  // never schedule into the past
  const EventId id = queue_->Push(when, next_seq_++, std::move(fn));
  schedules_ctr_->Inc();
  delay_hist_->Observe((when - now_).ns());
  pending_gauge_->Set(++live_);
  if (live_ > pending_peak_->value()) pending_peak_->Set(live_);
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  PLEXUS_PROFILE_SCOPE(kTimerCancel);
  if (queue_->Cancel(id)) {
    cancels_ctr_->Inc();
    pending_gauge_->Set(--live_);
  }
}

bool Simulator::IsPending(EventId id) const {
  return id != kInvalidEventId && queue_->Contains(id);
}

void Simulator::NoteFired(TimePoint when) {
  now_ = when;
  fires_ctr_->Inc();
  pending_gauge_->Set(--live_);
  ++events_processed_;
}

std::size_t Simulator::Run() {
  stopped_ = false;
  std::size_t fired = 0;
  TimePoint when;
  std::function<void()> fn;
  while (!stopped_) {
    bool popped;
    {
      PLEXUS_PROFILE_SCOPE(kSchedulerPop);
      popped = queue_->PopDueBefore(TimePoint::Max(), &when, &fn);
    }
    if (!popped) break;
    NoteFired(when);
    {
      PLEXUS_PROFILE_SCOPE(kTimerFire);
      fn();
    }
    ++fired;
  }
  return fired;
}

std::size_t Simulator::RunUntil(TimePoint t) {
  stopped_ = false;
  std::size_t fired = 0;
  TimePoint when;
  std::function<void()> fn;
  while (!stopped_) {
    bool popped;
    {
      PLEXUS_PROFILE_SCOPE(kSchedulerPop);
      popped = queue_->PopDueBefore(t, &when, &fn);
    }
    if (!popped) break;
    NoteFired(when);
    {
      PLEXUS_PROFILE_SCOPE(kTimerFire);
      fn();
    }
    ++fired;
  }
  if (now_ < t) now_ = t;
  return fired;
}

std::size_t Simulator::pending_events() const {
  return static_cast<std::size_t>(live_);
}
std::size_t Simulator::dead_entries() const { return queue_->dead(); }

}  // namespace sim
