#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/metrics.h"
#include "sim/profiler.h"
#include "sim/slab.h"
#include "sim/tracer.h"

namespace sim {

// --- binary heap (ablation baseline) ----------------------------------------
//
// The original std::priority_queue scheduler, restated over a raw vector so
// dead entries can be compacted. Cancel is lazy — it marks the id dead — but
// no longer unbounded: whenever dead entries exceed half the queue, the live
// entries are filtered out and re-heapified, so queue space and pop cost stay
// proportional to live timers.
//
// Callbacks live in an IndexPool slab ("sched.heap_node"); the heap itself
// holds POD entries {when, seq, node index, generation}, so pushes, sift
// swaps, and compaction never touch a closure or the allocator. A cancelled
// entry frees its node eagerly (bumping the generation, which is what marks
// the heap entry dead) — only the 24-byte POD entry lingers until
// compaction, matching the historical dead-entry accounting exactly.
class Simulator::HeapQueue {
 public:
  explicit HeapQueue(MetricsRegistry& metrics)
      : pool_("sched.heap_node"),
        dead_gauge_(metrics.gauge("sim.scheduler_dead_entries")),
        compactions_(metrics.counter("sim.scheduler_compactions")) {}

  EventId Push(TimePoint when, std::uint64_t seq, EventFn fn) {
    const std::uint32_t idx = pool_.Alloc();
    pool_.at(idx).fn = std::move(fn);
    const std::uint32_t gen = pool_.gen(idx);
    heap_.push_back(Entry{when, seq, idx, gen});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return (static_cast<EventId>(idx) + 1) << 32 | static_cast<EventId>(gen);
  }

  bool Cancel(EventId id) {
    std::uint32_t idx;
    if (!Decode(id, &idx)) return false;
    // Free the node now (releases captures, bumps the generation so the
    // heap entry reads as dead); the POD entry stays until compaction.
    pool_.at(idx).fn = nullptr;
    pool_.Free(idx);
    ++dead_;
    dead_gauge_.Set(static_cast<std::int64_t>(dead_));
    MaybeCompact();
    return true;
  }

  bool Contains(EventId id) const {
    std::uint32_t idx;
    return Decode(id, &idx);
  }

  bool PopDueBefore(TimePoint horizon, TimePoint* when, EventFn* fn) {
    DropDeadHead();
    if (heap_.empty() || heap_.front().when > horizon) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry e = heap_.back();
    heap_.pop_back();
    *when = e.when;
    *fn = std::move(pool_.at(e.idx).fn);
    pool_.Free(e.idx);
    return true;
  }

  std::size_t live() const { return heap_.size() - dead_; }
  std::size_t dead() const { return dead_; }

 private:
  struct Node {
    EventFn fn;
  };
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t idx;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool Decode(EventId id, std::uint32_t* idx) const {
    if (id == kInvalidEventId) return false;
    const std::uint64_t slot_plus_one = id >> 32;
    if (slot_plus_one == 0 || slot_plus_one > pool_.capacity()) return false;
    const std::uint32_t i = static_cast<std::uint32_t>(slot_plus_one - 1);
    if (!pool_.LiveHandle(i, static_cast<std::uint32_t>(id))) return false;
    *idx = i;
    return true;
  }

  bool EntryDead(const Entry& e) const {
    return !pool_.LiveHandle(e.idx, e.gen);
  }

  void DropDeadHead() {
    while (!heap_.empty() && EntryDead(heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      --dead_;
    }
    dead_gauge_.Set(static_cast<std::int64_t>(dead_));
  }

  void MaybeCompact() {
    if (dead_ * 2 <= heap_.size()) return;
    std::erase_if(heap_, [this](const Entry& e) { return EntryDead(e); });
    dead_ = 0;
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    compactions_.Inc();
    dead_gauge_.Set(0);
  }

  std::vector<Entry> heap_;
  IndexPool<Node> pool_;
  std::size_t dead_ = 0;
  Gauge& dead_gauge_;
  Counter& compactions_;
};

// --- hierarchical timing wheel (default) ------------------------------------
class Simulator::WheelQueue {
 public:
  explicit WheelQueue(MetricsRegistry& metrics)
      : cascades_(metrics.counter("sim.timer_cascades")) {}

  EventId Push(TimePoint when, std::uint64_t seq, EventFn fn) {
    return wheel_.Schedule(when, seq, std::move(fn));
  }

  bool Cancel(EventId id) { return wheel_.Cancel(id); }
  bool Contains(EventId id) const { return wheel_.Contains(id); }

  bool PopDueBefore(TimePoint horizon, TimePoint* when, EventFn* fn) {
    const bool popped = wheel_.PopDueBefore(horizon, when, fn);
    const std::uint64_t moves = wheel_.cascade_moves();
    cascades_.Inc(moves - reported_moves_);
    reported_moves_ = moves;
    return popped;
  }

  std::size_t live() const { return wheel_.size(); }
  std::size_t dead() const { return 0; }  // cancellation is eager

 private:
  TimerWheel wheel_;
  Counter& cascades_;
  std::uint64_t reported_moves_ = 0;
};

// --- Simulator ---------------------------------------------------------------

SchedulerImpl Simulator::DefaultSchedulerImpl() {
  const char* env = std::getenv("PLEXUS_SCHED");
  if (env != nullptr && std::string_view(env) == "heap") {
    return SchedulerImpl::kHeap;
  }
  return SchedulerImpl::kWheel;
}

Simulator::Simulator(SchedulerImpl impl)
    : impl_(impl),
      metrics_(std::make_unique<MetricsRegistry>()),
      tracer_(std::make_unique<Tracer>()) {
  schedules_ctr_ = &metrics_->counter("sim.timer_schedules");
  cancels_ctr_ = &metrics_->counter("sim.timer_cancels");
  fires_ctr_ = &metrics_->counter("sim.timer_fires");
  pending_gauge_ = &metrics_->gauge("sim.timer_pending");
  pending_peak_ = &metrics_->gauge("sim.timer_pending_peak");
  delay_hist_ = &metrics_->histogram("sim.timer_delay_ns");
  if (impl_ == SchedulerImpl::kHeap) {
    heap_ = std::make_unique<HeapQueue>(*metrics_);
  } else {
    wheel_ = std::make_unique<WheelQueue>(*metrics_);
  }
  // Ring overflow surfaces as sim.tracer_dropped; resolution is lazy (first
  // drop) so drop-free runs keep byte-identical metrics snapshots.
  tracer_->SetDropRegistry(metrics_.get());
}

Simulator::~Simulator() = default;

EventId Simulator::ScheduleAt(TimePoint when, EventFn fn) {
  PLEXUS_PROFILE_SCOPE(kTimerSchedule);
  assert(fn != nullptr || !"scheduling an empty callback");
  if (when < now_) when = now_;  // never schedule into the past
  const EventId id = wheel_ != nullptr
                         ? wheel_->Push(when, next_seq_++, std::move(fn))
                         : heap_->Push(when, next_seq_++, std::move(fn));
  schedules_ctr_->Inc();
  delay_hist_->Observe((when - now_).ns());
  pending_gauge_->Set(++live_);
  if (live_ > pending_peak_->value()) pending_peak_->Set(live_);
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  PLEXUS_PROFILE_SCOPE(kTimerCancel);
  const bool cancelled = wheel_ != nullptr ? wheel_->Cancel(id) : heap_->Cancel(id);
  if (cancelled) {
    cancels_ctr_->Inc();
    pending_gauge_->Set(--live_);
  }
}

bool Simulator::IsPending(EventId id) const {
  if (id == kInvalidEventId) return false;
  return wheel_ != nullptr ? wheel_->Contains(id) : heap_->Contains(id);
}

void Simulator::NoteFired(TimePoint when) {
  now_ = when;
  fires_ctr_->Inc();
  pending_gauge_->Set(--live_);
  ++events_processed_;
}

// The devirtualized run loop: instantiated once per concrete queue type, so
// the pop and the fire are direct calls the compiler can inline.
template <typename Q>
std::size_t Simulator::Drain(Q& q, TimePoint horizon) {
  stopped_ = false;
  std::size_t fired = 0;
  TimePoint when;
  EventFn fn;
  while (!stopped_) {
    bool popped;
    {
      PLEXUS_PROFILE_SCOPE(kSchedulerPop);
      popped = q.PopDueBefore(horizon, &when, &fn);
    }
    if (!popped) break;
    NoteFired(when);
    {
      PLEXUS_PROFILE_SCOPE(kTimerFire);
      fn();
    }
    fn = nullptr;  // drop captures before the next pop overwrites
    ++fired;
  }
  return fired;
}

std::size_t Simulator::Run() {
  return wheel_ != nullptr ? Drain(*wheel_, TimePoint::Max())
                           : Drain(*heap_, TimePoint::Max());
}

std::size_t Simulator::RunUntil(TimePoint t) {
  const std::size_t fired =
      wheel_ != nullptr ? Drain(*wheel_, t) : Drain(*heap_, t);
  if (now_ < t) now_ = t;
  return fired;
}

std::size_t Simulator::pending_events() const {
  return static_cast<std::size_t>(live_);
}
std::size_t Simulator::dead_entries() const {
  return heap_ != nullptr ? heap_->dead() : 0;
}

}  // namespace sim
