#include "sim/packet_mutator.h"

#include <algorithm>

namespace sim {
namespace {

constexpr std::size_t kEthLen = 14;

std::uint16_t Rd16(const std::vector<std::uint8_t>& f, std::size_t off) {
  return static_cast<std::uint16_t>((f[off] << 8) | f[off + 1]);
}
void Wr16(std::vector<std::uint8_t>& f, std::size_t off, std::uint16_t v) {
  f[off] = static_cast<std::uint8_t>(v >> 8);
  f[off + 1] = static_cast<std::uint8_t>(v & 0xff);
}
std::uint32_t Rd32(const std::vector<std::uint8_t>& f, std::size_t off) {
  return (static_cast<std::uint32_t>(f[off]) << 24) |
         (static_cast<std::uint32_t>(f[off + 1]) << 16) |
         (static_cast<std::uint32_t>(f[off + 2]) << 8) | f[off + 3];
}
void Wr32(std::vector<std::uint8_t>& f, std::size_t off, std::uint32_t v) {
  f[off] = static_cast<std::uint8_t>(v >> 24);
  f[off + 1] = static_cast<std::uint8_t>(v >> 16);
  f[off + 2] = static_cast<std::uint8_t>(v >> 8);
  f[off + 3] = static_cast<std::uint8_t>(v);
}

// Frame anatomy, resolved from the bytes currently in the frame. Fields are
// meaningful only as deep as the booleans admit.
struct Anatomy {
  bool ipv4 = false;
  std::size_t ip = 0;   // offset of the IPv4 header
  std::size_t ihl = 0;  // its claimed length in bytes
  std::size_t l4 = 0;   // offset of the transport header
  std::uint8_t proto = 0;
  bool tcp = false;
  bool udp = false;
};

Anatomy Dissect(const std::vector<std::uint8_t>& f) {
  Anatomy a;
  if (f.size() < kEthLen + 20 || Rd16(f, 12) != 0x0800) return a;
  a.ip = kEthLen;
  a.ihl = static_cast<std::size_t>(f[a.ip] & 0x0f) * 4;
  if ((f[a.ip] >> 4) != 4 || a.ihl < 20 || f.size() < a.ip + a.ihl) return a;
  a.ipv4 = true;
  a.proto = f[a.ip + 9];
  a.l4 = a.ip + a.ihl;
  a.tcp = a.proto == 6 && f.size() >= a.l4 + 20;
  a.udp = a.proto == 17 && f.size() >= a.l4 + 8;
  return a;
}

std::uint32_t OnesSum(const std::uint8_t* p, std::size_t n, std::uint32_t sum) {
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    sum += static_cast<std::uint32_t>((p[i] << 8) | p[i + 1]);
  }
  if (n & 1) sum += static_cast<std::uint32_t>(p[n - 1]) << 8;
  return sum;
}
std::uint16_t Fold(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

// Re-seals IP header and transport checksums against whatever the frame now
// claims, so forged lengths are not shadowed by checksum failures. Only
// frames a receiver would actually checksum are resealed; anything more
// broken than that dies earlier on structural bounds, where the checksum
// value is never read.
void Reseal(std::vector<std::uint8_t>& f) {
  const Anatomy a = Dissect(f);
  if (!a.ipv4) return;
  Wr16(f, a.ip + 10, 0);
  Wr16(f, a.ip + 10, Fold(OnesSum(f.data() + a.ip, a.ihl, 0)));
  if (!a.tcp && !a.udp) return;
  // The receiver checksums exactly total_length - ihl transport bytes; a
  // claimed length past the frame end is dropped on bounds before any
  // checksum, so there is nothing to seal.
  const std::uint16_t total = Rd16(f, a.ip + 2);
  if (total < a.ihl) return;
  const std::size_t l4len = total - a.ihl;
  if (a.l4 + l4len > f.size() || l4len < (a.tcp ? 20u : 8u)) return;
  const std::size_t csum_off = a.tcp ? a.l4 + 16 : a.l4 + 6;
  Wr16(f, csum_off, 0);
  std::uint32_t sum = OnesSum(f.data() + a.ip + 12, 8, 0);  // src + dst
  sum += a.proto;
  sum += static_cast<std::uint32_t>(l4len);
  Wr16(f, csum_off, Fold(OnesSum(f.data() + a.l4, l4len, sum)));
}

}  // namespace

const char* PacketMutator::OpName(Op op) {
  switch (op) {
    case Op::kTruncate: return "truncate";
    case Op::kBitFlip: return "bit-flip";
    case Op::kLengthLie: return "length-lie";
    case Op::kOptionSoup: return "option-soup";
    case Op::kFragOverlap: return "frag-overlap";
    case Op::kGroBoundary: return "gro-boundary";
  }
  return "?";
}

PacketMutator::Op PacketMutator::Mutate(std::vector<std::uint8_t>& frame) {
  const Op op = static_cast<Op>(rng_.UniformU64(kOpCount));
  if (Apply(op, frame)) return op;
  Apply(Op::kBitFlip, frame);
  return Op::kBitFlip;
}

bool PacketMutator::Apply(Op op, std::vector<std::uint8_t>& frame) {
  if (frame.size() < 2) return false;
  const Anatomy a = Dissect(frame);
  switch (op) {
    case Op::kTruncate: {
      std::size_t cut = 1 + rng_.UniformU64(frame.size() - 1);
      if (a.ipv4 && rng_.Bernoulli(0.5)) {
        // Snap to just inside a header boundary: the classic runt shapes
        // where one-byte-short views must throw, not read.
        const std::size_t marks[4] = {kEthLen - 1, a.ip + 19, a.l4 + 7, a.l4 + 19};
        cut = std::max<std::size_t>(1, std::min(frame.size() - 1, marks[rng_.UniformU64(4)]));
      }
      frame.resize(cut);
      return true;
    }
    case Op::kBitFlip: {
      const int flips = 1 + static_cast<int>(rng_.UniformU64(3));
      for (int i = 0; i < flips; ++i) {
        frame[rng_.UniformU64(frame.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.UniformU64(8));
      }
      return true;
    }
    case Op::kLengthLie: {
      if (!a.ipv4) return false;
      switch (rng_.UniformU64((a.tcp || a.udp) ? 3 : 2)) {
        case 0:  // total_length claims more or fewer bytes than exist
          Wr16(frame, a.ip + 2, static_cast<std::uint16_t>(rng_.NextU64()));
          break;
        case 1:  // IHL points the transport header somewhere else
          frame[a.ip] = static_cast<std::uint8_t>(0x40 | rng_.UniformU64(16));
          break;
        case 2:
          if (a.tcp) {  // data offset outside [20, segment length]
            frame[a.l4 + 12] = static_cast<std::uint8_t>(rng_.UniformU64(16) << 4);
          } else {  // UDP length field lies about the datagram
            Wr16(frame, a.l4 + 4, static_cast<std::uint16_t>(rng_.NextU64()));
          }
          break;
      }
      Reseal(frame);
      return true;
    }
    case Op::kOptionSoup: {
      if (!a.tcp) return false;
      // Stretch the claimed TCP header over 4..40 bytes of options and fill
      // whatever of that range the frame really contains with garbage
      // kind/length bytes — the option walk must refuse to stray.
      const std::size_t words = 6 + rng_.UniformU64(10);  // 24..60-byte header
      frame[a.l4 + 12] = static_cast<std::uint8_t>(words << 4);
      const std::size_t opt_end = std::min(frame.size(), a.l4 + words * 4);
      for (std::size_t i = a.l4 + 20; i < opt_end; ++i) {
        frame[i] = static_cast<std::uint8_t>(rng_.NextU64());
      }
      Reseal(frame);
      return true;
    }
    case Op::kFragOverlap: {
      if (!a.ipv4) return false;
      // Forge the fragment word: offsets that collide with other fragments
      // of the same id, or land the payload past the 64 KiB datagram limit.
      std::uint16_t off8 = static_cast<std::uint16_t>(rng_.UniformU64(0x2000));
      if (rng_.Bernoulli(0.5)) {
        off8 = static_cast<std::uint16_t>(rng_.UniformU64(4));  // near zero: overlaps
      }
      std::uint16_t v = off8;
      if (rng_.Bernoulli(0.7)) v |= 0x2000;  // more-fragments
      Wr16(frame, a.ip + 6, v);
      Reseal(frame);
      return true;
    }
    case Op::kGroBoundary: {
      if (!a.tcp) return false;
      switch (rng_.UniformU64(3)) {
        case 0: {  // nudge seq across the coalescing run's boundary
          const std::uint32_t seq = Rd32(frame, a.l4 + 4);
          Wr32(frame, a.l4 + 4,
               seq + static_cast<std::uint32_t>(rng_.UniformInt(-3000, 3000)));
          break;
        }
        case 1:  // flip one flag bit (PSH/FIN/RST break merge eligibility)
          frame[a.l4 + 13] ^= static_cast<std::uint8_t>(1u << rng_.UniformU64(6));
          break;
        case 2:  // advertise a different window mid-run
          Wr16(frame, a.l4 + 14, static_cast<std::uint16_t>(rng_.NextU64()));
          break;
      }
      Reseal(frame);
      return true;
    }
  }
  return false;
}

}  // namespace sim
