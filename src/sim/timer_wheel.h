// Hierarchical timing wheel: the simulator's O(1) event queue.
//
// Eight levels of 256 slots each cover the full 64-bit nanosecond horizon
// (level L indexes bits [8L, 8L+8) of the deadline), so arbitrarily long
// RTO / keepalive / 2MSL timers need no separate overflow list — they simply
// land on a high level and cascade down as the cursor approaches them.
//
// Operations:
//   Schedule   O(1): radix placement by the highest byte in which the
//              deadline differs from the cursor.
//   Cancel     O(1) and *eager*: the entry is removed (swap-remove from its
//              slot, node returned to the pool) the moment it is cancelled,
//              so dead timers never occupy queue space — the fix for the
//              binary heap's lazy-cancellation leak.
//   Pop        amortized O(levels): each entry moves to a strictly lower
//              level at most kLevels-1 times over its lifetime.
//
// Determinism. The pop order is exactly (deadline, seq): the cursor invariant
// (cursor <= every pending deadline, advanced only to popped deadlines)
// guarantees that after cascading the cursor's own slot on every level, each
// entry sits at the level/slot its deadline implies relative to the cursor.
// Levels are then strictly ordered in time, slots within a level are ordered,
// and a level-0 slot holds exactly one deadline, inside which the minimum
// seq is selected — byte-for-byte the firing order of a binary heap keyed on
// (deadline, seq). See DESIGN.md section 11 for the invariant argument.
//
// Allocation: nodes live in a sim::IndexPool slab ("sched.wheel_node" in the
// slab registry) and callbacks are sim::EventFn — inline-capture callables —
// so arming a timer allocates nothing once the pool is warm. EventIds encode
// (pool index, generation): Cancel/Contains are two array reads, and
// generations make stale ids (fired or cancelled, slot since reused) compare
// invalid instead of aliasing.
#ifndef PLEXUS_SIM_TIMER_WHEEL_H_
#define PLEXUS_SIM_TIMER_WHEEL_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/slab.h"
#include "sim/small_fn.h"
#include "sim/time.h"

namespace sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// The scheduler's callback type. 48 inline bytes hold every hot-path capture
// the engine schedules — the largest is TcpConnection::ScheduleTimer's
// [this, trace_name, armed_by, handler] at 40 — while keeping a wheel node
// under a cache line and a half. Oversized captures (disk requests) heap-box
// transparently, counted by SmallFnHeapFallbacks.
using EventFn = SmallFn<void(), 48>;

class TimerWheel {
 public:
  static constexpr int kLevelBits = 8;
  static constexpr int kLevels = 8;  // 8 x 8 bits: the whole int64 horizon
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;

  TimerWheel() : pool_("sched.wheel_node") {}
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Inserts an entry. `seq` breaks ties among equal deadlines (FIFO).
  // `when` must be >= cursor(); the Simulator clamps to Now() first.
  // Defined inline below: schedule/cancel are the per-ACK hot path.
  EventId Schedule(TimePoint when, std::uint64_t seq, EventFn fn);

  // Eagerly removes a pending entry. Returns true if `id` was pending;
  // fired, cancelled, and invalid ids are safe no-ops.
  bool Cancel(EventId id);

  bool Contains(EventId id) const;

  // If the earliest entry (ties broken by seq) is due at or before
  // `horizon`, pops it into *when / *fn and returns true. Advances the
  // cursor to the popped deadline.
  bool PopDueBefore(TimePoint horizon, TimePoint* when, EventFn* fn);

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  // Total entry moves between levels; cascade work is bounded by
  // (kLevels - 1) * total insertions.
  std::uint64_t cascade_moves() const { return cascade_moves_; }
  TimePoint cursor() const { return TimePoint::FromNanos(cursor_); }

 private:
  struct Node {
    std::int64_t when = 0;
    std::uint64_t seq = 0;
    EventFn fn;
    std::uint32_t pos = 0;        // index within its slot vector
    std::uint8_t level = 0;
    std::uint8_t slot_byte = 0;   // slot index within the level
  };

  int LevelFor(std::int64_t when) const;
  int CursorSlot(int level) const {
    return static_cast<int>(
        (static_cast<std::uint64_t>(cursor_) >> (level * kLevelBits)) &
        (kSlotsPerLevel - 1));
  }
  int FirstSlot(int level) const;      // first occupied slot, or -1
  void Place(std::uint32_t idx);       // file node under the current cursor
  void RemoveFromSlot(std::uint32_t idx);
  void CascadeSlot(int level, int slot);
  bool DecodeId(EventId id, std::uint32_t* idx) const;

  IndexPool<Node> pool_;
  std::vector<std::uint32_t> slots_[kLevels][kSlotsPerLevel];
  std::uint64_t bitmap_[kLevels][kSlotsPerLevel / 64] = {};
  std::vector<std::uint32_t> scratch_;  // cascade staging, reused
  std::int64_t cursor_ = 0;
  std::size_t live_ = 0;
  std::uint64_t cascade_moves_ = 0;
};

// --- inline hot path (schedule / cancel, the per-ACK disarm/re-arm pair) ----

inline int TimerWheel::LevelFor(std::int64_t when) const {
  assert(when >= cursor_ && "deadline behind the wheel cursor");
  const std::uint64_t diff =
      static_cast<std::uint64_t>(when) ^ static_cast<std::uint64_t>(cursor_);
  if (diff == 0) return 0;
  return (63 - std::countl_zero(diff)) / kLevelBits;
}

inline void TimerWheel::Place(std::uint32_t idx) {
  Node& n = pool_.at(idx);
  const int level = LevelFor(n.when);
  const int slot = static_cast<int>(
      (static_cast<std::uint64_t>(n.when) >> (level * kLevelBits)) &
      (kSlotsPerLevel - 1));
  std::vector<std::uint32_t>& vec = slots_[level][slot];
  n.level = static_cast<std::uint8_t>(level);
  n.slot_byte = static_cast<std::uint8_t>(slot);
  n.pos = static_cast<std::uint32_t>(vec.size());
  vec.push_back(idx);
  bitmap_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

inline void TimerWheel::RemoveFromSlot(std::uint32_t idx) {
  Node& n = pool_.at(idx);
  std::vector<std::uint32_t>& vec = slots_[n.level][n.slot_byte];
  const std::uint32_t moved = vec.back();
  vec.pop_back();
  if (moved != idx) {  // swap-remove: fix up the entry that took our place
    vec[n.pos] = moved;
    pool_.at(moved).pos = n.pos;
  }
  if (vec.empty()) {
    bitmap_[n.level][n.slot_byte >> 6] &=
        ~(std::uint64_t{1} << (n.slot_byte & 63));
  }
}

inline bool TimerWheel::DecodeId(EventId id, std::uint32_t* idx) const {
  if (id == kInvalidEventId) return false;
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > pool_.capacity()) return false;
  const std::uint32_t i = static_cast<std::uint32_t>(slot_plus_one - 1);
  if (!pool_.LiveHandle(i, static_cast<std::uint32_t>(id))) return false;
  *idx = i;
  return true;
}

inline EventId TimerWheel::Schedule(TimePoint when, std::uint64_t seq,
                                    EventFn fn) {
  const std::uint32_t idx = pool_.Alloc();
  Node& n = pool_.at(idx);
  n.when = when.ns();
  n.seq = seq;
  n.fn = std::move(fn);
  Place(idx);
  ++live_;
  return (static_cast<EventId>(idx) + 1) << 32 |
         static_cast<EventId>(pool_.gen(idx));
}

inline bool TimerWheel::Cancel(EventId id) {
  std::uint32_t idx;
  if (!DecodeId(id, &idx)) return false;
  RemoveFromSlot(idx);
  pool_.at(idx).fn = nullptr;  // release the closure's captures immediately
  pool_.Free(idx);
  --live_;
  return true;
}

inline bool TimerWheel::Contains(EventId id) const {
  std::uint32_t idx;
  return DecodeId(id, &idx);
}

}  // namespace sim

#endif  // PLEXUS_SIM_TIMER_WHEEL_H_
