// A simulated workstation: one CPU, a cost model, and an identity.
//
// Host is the charging façade the protocol code talks to. Protocol modules
// never see Cpu or CpuContext directly; they run inside a task submitted via
// Host::Submit and record consumed CPU time with Host::Charge. Because the
// simulator is single-threaded, the "current context" is a plain member.
#ifndef PLEXUS_SIM_HOST_H_
#define PLEXUS_SIM_HOST_H_

#include <cassert>
#include <functional>
#include <string>
#include <utility>

#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/small_fn.h"
#include "sim/tracer.h"

namespace net {
class MbufPool;
}  // namespace net

namespace sim {

// A budget fence bounds the CPU time the code it brackets may charge.
// While a fence is active, every Charge() accrues against its limit; the
// charge that would cross the limit is truncated to exactly the remaining
// budget (so the CPU is billed precisely the budget, no more) and the
// fence's on_exceeded callback fires. The callback is expected to throw —
// that is how the SPIN dispatcher asynchronously terminates an over-budget
// handler mid-execution (paper Section 3.3). Fences nest: an inner fence
// also accrues against every enclosing one, and the tightest fence trips.
struct BudgetFence {
  Duration limit;
  Duration used;
  std::function<void()> on_exceeded;  // must throw; re-fires if the fenced
                                      // code swallows it and charges again
  BudgetFence* prev = nullptr;
};

class Host {
 public:
  Host(Simulator& s, std::string name, CostModel costs, std::uint64_t seed = 1)
      : sim_(s),
        name_(std::move(name)),
        costs_(costs),
        cpu_(s),
        rng_(seed),
        tracer_(&s.tracer()),
        trace_track_(tracer_->RegisterTrack(name_)) {}
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;
  virtual ~Host() = default;

  const std::string& name() const { return name_; }
  Simulator& simulator() { return sim_; }
  TimePoint Now() const { return sim_.Now(); }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }
  Random& rng() { return rng_; }

  // Per-host instruments. Protocol modules resolve named counters once at
  // construction; snapshots/JSON come from the registry directly.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // This host's row in the simulation-wide trace.
  Tracer& tracer() { return *tracer_; }
  bool tracing() const { return tracer_->enabled(); }
  int trace_track() const { return trace_track_; }

  // The packet id the currently executing code path is working on behalf
  // of; spans opened without an explicit id inherit it. Scoped via
  // PacketTraceScope below.
  std::uint64_t current_trace_id() const { return current_trace_id_; }
  std::uint64_t SetCurrentTraceId(std::uint64_t id) {
    return std::exchange(current_trace_id_, id);
  }

  // Marks a point event on this host's trace track (the structured
  // replacement for the old printf-style sim::Trace::Log). Templated so the
  // call-site string literals are not materialized into std::strings unless
  // tracing is actually on — with ~2 instants per packet, the eager
  // conversions were measurable wall-clock on the disabled path.
  template <typename N, typename C>
  void TraceInstant(N&& name, C&& category, std::uint64_t trace_id = 0) {
    if (!tracing()) return;
    tracer_->RecordInstant(
        trace_track_, Now(),
        in_task() ? charged_so_far() : Duration::Zero(),
        std::string(std::forward<N>(name)), std::string(std::forward<C>(category)),
        trace_id != 0 ? trace_id : current_trace_id_);
  }

  // Submits work to this host's CPU. While the work runs, Charge()/After()
  // apply to its task context. TaskFn keeps the capture inline in the CPU
  // queue slot (std::function heap-boxed anything past 16 bytes; this was
  // one allocation per submitted task on the packet path).
  using TaskFn = SmallFn<void(), 64>;
  void Submit(Priority p, TaskFn work) {
    cpu_.Submit(p, [this, work = std::move(work)](CpuContext& ctx) {
      CpuContext* prev = current_;
      current_ = &ctx;
      work();
      current_ = prev;
    });
  }

  // Records d of CPU time against the currently running task. Must only be
  // called from within work submitted via Submit(). If a budget fence is
  // active the charge is measured against it; crossing the tightest limit
  // bills exactly the remaining budget and invokes that fence's
  // on_exceeded (which throws, abandoning the fenced code's remaining side
  // effects).
  void Charge(Duration d) {
    assert(current_ != nullptr && "Charge() outside of a CPU task");
    if (fence_ == nullptr) {
      current_->Charge(d);
      tracer_->OnCharge(trace_track_, d);
      return;
    }
    // Find the tightest remaining budget across active fences. A charge
    // that lands exactly on a limit is still within budget; only exceeding
    // it trips the fence.
    Duration allow = d;
    BudgetFence* tripped = nullptr;
    for (BudgetFence* f = fence_; f != nullptr; f = f->prev) {
      const Duration remaining = f->limit - f->used;
      if (remaining < allow) {
        allow = remaining;
        tripped = f;
      }
    }
    for (BudgetFence* f = fence_; f != nullptr; f = f->prev) f->used += allow;
    current_->Charge(allow);
    // Attribute what was actually billed: a fence-truncated charge must show
    // up in the trace as the truncated amount, or the per-category ledger
    // would exceed the CPU's busy time.
    tracer_->OnCharge(trace_track_, allow);
    if (tripped != nullptr) tripped->on_exceeded();
  }

  // Activates / deactivates a budget fence for the current task. Strict
  // stack discipline: the fence passed to Pop must be the innermost one.
  void PushBudgetFence(BudgetFence* f) {
    f->prev = fence_;
    fence_ = f;
  }
  void PopBudgetFence(BudgetFence* f) {
    assert(fence_ == f && "budget fences must pop in LIFO order");
    fence_ = f->prev;
  }

  // Schedules fn for the completion instant of the current task.
  void AfterTask(AfterFn fn) {
    assert(current_ != nullptr && "AfterTask() outside of a CPU task");
    current_->After(std::move(fn));
  }

  // The host's bounded mbuf pool, or nullptr when the owner never attached
  // one (raw driver tests / benches keep unbounded allocation). A pointer
  // only: sim must not depend on net, and ownership stays with the
  // PlexusHost/SocketHost that wires the pool's hooks into metrics().
  net::MbufPool* mbuf_pool() const { return mbuf_pool_; }
  void set_mbuf_pool(net::MbufPool* pool) { mbuf_pool_ = pool; }

  bool in_task() const { return current_ != nullptr; }
  Duration charged_so_far() const {
    assert(current_ != nullptr);
    return current_->charged();
  }

 private:
  Simulator& sim_;
  std::string name_;
  CostModel costs_;
  Cpu cpu_;
  Random rng_;
  CpuContext* current_ = nullptr;
  BudgetFence* fence_ = nullptr;  // innermost active fence (intrusive stack)
  MetricsRegistry metrics_;
  Tracer* tracer_;
  int trace_track_;
  std::uint64_t current_trace_id_ = 0;
  net::MbufPool* mbuf_pool_ = nullptr;
};

// RAII span on a host's trace track. Free when tracing is disabled: the
// templated constructor/Begin check tracing before converting the name and
// category to std::string, so call sites passing literals (`TraceSpan
// span(host, "tcp.input", "proto")`) build no strings at all on the
// disabled path — at ~4 spans per packet those conversions were a
// measurable slice of the wall-clock profile. The destructor closes the
// span even when the scope unwinds via exception, so terminated handlers
// still leave balanced traces.
class TraceSpan {
 public:
  TraceSpan() = default;
  template <typename N, typename C>
  TraceSpan(Host& h, N&& name, C&& category, std::uint64_t trace_id = 0) {
    Begin(h, std::forward<N>(name), std::forward<C>(category), trace_id);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(track_);
  }

  template <typename N, typename C>
  void Begin(Host& h, N&& name, C&& category, std::uint64_t trace_id = 0) {
    if (!h.tracing() || tracer_ != nullptr) return;
    BeginSlow(h, std::string(std::forward<N>(name)),
              std::string(std::forward<C>(category)), trace_id);
  }

 private:
  // Out of the template so the begin sequence is emitted once, not per
  // name/category type combination.
  void BeginSlow(Host& h, std::string name, std::string category,
                 std::uint64_t trace_id) {
    tracer_ = &h.tracer();
    track_ = h.trace_track();
    tracer_->BeginSpan(
        track_, h.Now(),
        h.in_task() ? h.charged_so_far() : Duration::Zero(), std::move(name),
        std::move(category), trace_id != 0 ? trace_id : h.current_trace_id());
  }

  Tracer* tracer_ = nullptr;
  int track_ = 0;
};

// Scopes the host's current packet trace id: spans opened inside inherit
// it without every layer having to thread the id through its signatures.
class PacketTraceScope {
 public:
  PacketTraceScope(Host& h, std::uint64_t id)
      : host_(h), prev_(h.SetCurrentTraceId(id)) {}
  PacketTraceScope(const PacketTraceScope&) = delete;
  PacketTraceScope& operator=(const PacketTraceScope&) = delete;
  ~PacketTraceScope() { host_.SetCurrentTraceId(prev_); }

 private:
  Host& host_;
  std::uint64_t prev_;
};

}  // namespace sim

#endif  // PLEXUS_SIM_HOST_H_
