// A simulated workstation: one CPU, a cost model, and an identity.
//
// Host is the charging façade the protocol code talks to. Protocol modules
// never see Cpu or CpuContext directly; they run inside a task submitted via
// Host::Submit and record consumed CPU time with Host::Charge. Because the
// simulator is single-threaded, the "current context" is a plain member.
#ifndef PLEXUS_SIM_HOST_H_
#define PLEXUS_SIM_HOST_H_

#include <cassert>
#include <functional>
#include <string>
#include <utility>

#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace sim {

// A budget fence bounds the CPU time the code it brackets may charge.
// While a fence is active, every Charge() accrues against its limit; the
// charge that would cross the limit is truncated to exactly the remaining
// budget (so the CPU is billed precisely the budget, no more) and the
// fence's on_exceeded callback fires. The callback is expected to throw —
// that is how the SPIN dispatcher asynchronously terminates an over-budget
// handler mid-execution (paper Section 3.3). Fences nest: an inner fence
// also accrues against every enclosing one, and the tightest fence trips.
struct BudgetFence {
  Duration limit;
  Duration used;
  std::function<void()> on_exceeded;  // must throw; re-fires if the fenced
                                      // code swallows it and charges again
  BudgetFence* prev = nullptr;
};

class Host {
 public:
  Host(Simulator& s, std::string name, CostModel costs, std::uint64_t seed = 1)
      : sim_(s), name_(std::move(name)), costs_(costs), cpu_(s), rng_(seed) {}
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;
  virtual ~Host() = default;

  const std::string& name() const { return name_; }
  Simulator& simulator() { return sim_; }
  TimePoint Now() const { return sim_.Now(); }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }
  Random& rng() { return rng_; }

  // Submits work to this host's CPU. While the work runs, Charge()/After()
  // apply to its task context.
  void Submit(Priority p, std::function<void()> work) {
    cpu_.Submit(p, [this, work = std::move(work)](CpuContext& ctx) {
      CpuContext* prev = current_;
      current_ = &ctx;
      work();
      current_ = prev;
    });
  }

  // Records d of CPU time against the currently running task. Must only be
  // called from within work submitted via Submit(). If a budget fence is
  // active the charge is measured against it; crossing the tightest limit
  // bills exactly the remaining budget and invokes that fence's
  // on_exceeded (which throws, abandoning the fenced code's remaining side
  // effects).
  void Charge(Duration d) {
    assert(current_ != nullptr && "Charge() outside of a CPU task");
    if (fence_ == nullptr) {
      current_->Charge(d);
      return;
    }
    // Find the tightest remaining budget across active fences. A charge
    // that lands exactly on a limit is still within budget; only exceeding
    // it trips the fence.
    Duration allow = d;
    BudgetFence* tripped = nullptr;
    for (BudgetFence* f = fence_; f != nullptr; f = f->prev) {
      const Duration remaining = f->limit - f->used;
      if (remaining < allow) {
        allow = remaining;
        tripped = f;
      }
    }
    for (BudgetFence* f = fence_; f != nullptr; f = f->prev) f->used += allow;
    current_->Charge(allow);
    if (tripped != nullptr) tripped->on_exceeded();
  }

  // Activates / deactivates a budget fence for the current task. Strict
  // stack discipline: the fence passed to Pop must be the innermost one.
  void PushBudgetFence(BudgetFence* f) {
    f->prev = fence_;
    fence_ = f;
  }
  void PopBudgetFence(BudgetFence* f) {
    assert(fence_ == f && "budget fences must pop in LIFO order");
    fence_ = f->prev;
  }

  // Schedules fn for the completion instant of the current task.
  void AfterTask(std::function<void()> fn) {
    assert(current_ != nullptr && "AfterTask() outside of a CPU task");
    current_->After(std::move(fn));
  }

  bool in_task() const { return current_ != nullptr; }
  Duration charged_so_far() const {
    assert(current_ != nullptr);
    return current_->charged();
  }

 private:
  Simulator& sim_;
  std::string name_;
  CostModel costs_;
  Cpu cpu_;
  Random rng_;
  CpuContext* current_ = nullptr;
  BudgetFence* fence_ = nullptr;  // innermost active fence (intrusive stack)
};

}  // namespace sim

#endif  // PLEXUS_SIM_HOST_H_
