// A compute-bound background workload for scheduling experiments.
//
// Submits fixed-size CPU slices at thread priority so that a target
// long-run utilization is consumed by "other applications". Interrupt- and
// kernel-priority work preempts between slices; other thread-priority work
// (like the monolithic baseline's awakened receive processes) queues behind
// whichever slice is running — which is exactly the scheduling interference
// the paper says in-kernel extensions avoid.
#ifndef PLEXUS_SIM_BACKGROUND_LOAD_H_
#define PLEXUS_SIM_BACKGROUND_LOAD_H_

#include "sim/host.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sim {

class BackgroundLoad {
 public:
  // utilization in [0, 1); slice is the scheduler quantum.
  BackgroundLoad(Host& host, double utilization, Duration slice = Duration::Millis(1))
      : host_(host), utilization_(utilization), slice_(slice) {}
  ~BackgroundLoad() { Stop(); }
  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  void Start() {
    if (utilization_ <= 0.0) return;
    running_ = true;
    Tick();
  }

  void Stop() {
    running_ = false;
    host_.simulator().Cancel(timer_);
    timer_ = kInvalidEventId;
  }

 private:
  void Tick() {
    if (!running_) return;
    const auto period =
        Duration::Nanos(static_cast<std::int64_t>(static_cast<double>(slice_.ns()) /
                                                  utilization_));
    timer_ = host_.simulator().Schedule(period, [this] { Tick(); });
    host_.Submit(Priority::kThread, [this] { host_.Charge(slice_); });
  }

  Host& host_;
  double utilization_;
  Duration slice_;
  bool running_ = false;
  EventId timer_ = kInvalidEventId;
};

}  // namespace sim

#endif  // PLEXUS_SIM_BACKGROUND_LOAD_H_
