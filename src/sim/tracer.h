// Structured event tracing on the virtual clock.
//
// One Tracer per Simulator. Hosts register a track (one row in the exported
// trace) and emit nested spans and instant events through RAII helpers in
// host.h. Two properties drive the design:
//
//  - Virtual time does not advance while task logic runs: every charge
//    inside a task is billed at the task's pickup instant. Span timestamps
//    therefore carry both the pickup instant and the CPU charged by the
//    task *before* the span opened ("offset"). Exporters synthesize
//    strictly nested wall positions as pickup + offset, which mirrors how
//    the CPU would actually have spent the time.
//
//  - Tracing must be free when disabled. The host-side helpers check
//    enabled() (one load + branch) before touching anything else; no
//    strings are built and no records stored on the disabled path.
//
// Completed spans land in a bounded ring buffer (oldest evicted first);
// open spans live on a per-track stack, so eviction never dangles a
// begin/end pair. Every Host::Charge while a span is open accrues to that
// span (self time) and to each enclosing span (total time), and to a
// per-category ledger — the per-layer CPU breakdown the paper's Section 4
// argues from. Charges with no open span accrue to "(unattributed)", so
// the category ledger always sums exactly to everything charged.
#ifndef PLEXUS_SIM_TRACER_H_
#define PLEXUS_SIM_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sim {

class Counter;
class MetricsRegistry;

class Tracer {
 public:
  struct Record {
    enum class Kind { kSpan, kInstant };
    Kind kind = Kind::kSpan;
    int track = 0;
    int depth = 0;              // nesting depth at emission (0 = task root)
    TimePoint task_start;       // pickup instant of the enclosing task
    Duration begin_offset;      // CPU charged by the task before the span opened
    Duration total;             // charged while open, children included
    Duration self;              // charged while open, children excluded
    std::uint64_t trace_id = 0; // packet id, 0 = none
    std::string name;
    std::string category;
  };

  // Default ring capacity: enough for every span of the bench scenarios,
  // small enough that an always-on stress test stays bounded.
  explicit Tracer(std::size_t capacity = 1 << 16);

  // Enabled by default only when PLEXUS_TRACE is set in the environment
  // (how scripts/check.sh runs the tracer-enabled test pass); programs
  // flip it explicitly with SetEnabled.
  bool enabled() const { return enabled_; }
  void SetEnabled(bool on) { enabled_ = on; }

  // One track per host; the returned id keys all subsequent calls.
  int RegisterTrack(std::string name);
  const std::string& track_name(int track) const { return tracks_[track].name; }

  // Monotonic per-simulation packet ids; 0 is reserved for "untraced".
  std::uint64_t NextTraceId() { return next_trace_id_++; }

  void BeginSpan(int track, TimePoint task_start, Duration offset,
                 std::string name, std::string category,
                 std::uint64_t trace_id);
  void EndSpan(int track);
  void RecordInstant(int track, TimePoint task_start, Duration offset,
                     std::string name, std::string category,
                     std::uint64_t trace_id);

  // Called by Host::Charge with the amount actually billed (after budget
  // fences truncate). Attributes to the innermost open span on the track.
  void OnCharge(int track, Duration billed) {
    if (!enabled_) return;
    Attribute(track, billed);
  }

  // Per-category virtual-ns ledger, including "(unattributed)". Sums to
  // total_charged() by construction.
  const std::map<std::string, Duration>& charge_by_category() const {
    return charge_by_category_;
  }
  Duration total_charged() const { return total_charged_; }

  std::size_t size() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }

  // Resizes the ring (clearing recorded spans, not the charge ledger). Used
  // by tests that need to force overflow without emitting 64k spans.
  void SetCapacity(std::size_t capacity);

  // Registry that receives the sim.tracer_dropped counter. The counter is
  // resolved lazily on the first dropped record, so simulations whose rings
  // never wrap keep byte-identical metrics snapshots.
  void SetDropRegistry(MetricsRegistry* registry) { drop_registry_ = registry; }
  // Completed records, oldest first. Children complete before parents, so
  // this is completion order, not begin order; exporters re-sort.
  std::vector<Record> Records() const;

  void Clear();

  // Exporters. Chrome JSON loads in chrome://tracing / Perfetto; text is a
  // line-per-record human rendering (the replacement sink for the old
  // printf-style sim::Trace).
  std::string ExportText() const;
  std::string ExportChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

  // {"driver":ns,...} — deterministic (map-ordered) category breakdown.
  std::string ExportChargeBreakdownJson() const;

 private:
  struct OpenFrame {
    TimePoint task_start;
    Duration begin_offset;
    Duration total;
    Duration self;
    std::uint64_t trace_id;
    std::string name;
    std::string category;
  };
  struct Track {
    std::string name;
    std::vector<OpenFrame> open;
  };

  void Attribute(int track, Duration billed);
  void Push(Record r);

  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<Record> ring_;  // circular once full
  std::size_t head_ = 0;      // oldest element when ring_ is full
  std::uint64_t dropped_ = 0;
  MetricsRegistry* drop_registry_ = nullptr;
  Counter* dropped_ctr_ = nullptr;  // resolved on first drop
  std::vector<Track> tracks_;
  std::uint64_t next_trace_id_ = 1;
  std::map<std::string, Duration> charge_by_category_;
  Duration total_charged_;
};

}  // namespace sim

#endif  // PLEXUS_SIM_TRACER_H_
