#include "sim/tracer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/metrics.h"

namespace sim {
namespace {

// ns -> "123.456" microseconds with fixed 3 decimals, formatted from the
// integer so exports are byte-stable across platforms/locales.
std::string MicrosFixed(std::int64_t ns) {
  const bool neg = ns < 0;
  std::uint64_t v = neg ? static_cast<std::uint64_t>(-ns)
                        : static_cast<std::uint64_t>(ns);
  std::string frac = std::to_string(v % 1000);
  while (frac.size() < 3) frac.insert(frac.begin(), '0');
  return (neg ? "-" : "") + std::to_string(v / 1000) + "." + frac;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  const char* env = std::getenv("PLEXUS_TRACE");
  enabled_ = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

int Tracer::RegisterTrack(std::string name) {
  tracks_.push_back(Track{std::move(name), {}});
  return static_cast<int>(tracks_.size()) - 1;
}

void Tracer::BeginSpan(int track, TimePoint task_start, Duration offset,
                       std::string name, std::string category,
                       std::uint64_t trace_id) {
  if (!enabled_) return;
  tracks_[track].open.push_back(OpenFrame{task_start, offset, Duration::Zero(),
                                          Duration::Zero(), trace_id,
                                          std::move(name), std::move(category)});
}

void Tracer::EndSpan(int track) {
  if (!enabled_) return;
  auto& open = tracks_[track].open;
  if (open.empty()) return;  // enabled flipped mid-span; drop silently
  OpenFrame f = std::move(open.back());
  open.pop_back();
  Record r;
  r.kind = Record::Kind::kSpan;
  r.track = track;
  r.depth = static_cast<int>(open.size());
  r.task_start = f.task_start;
  r.begin_offset = f.begin_offset;
  r.total = f.total;
  r.self = f.self;
  r.trace_id = f.trace_id;
  r.name = std::move(f.name);
  r.category = std::move(f.category);
  Push(std::move(r));
}

void Tracer::RecordInstant(int track, TimePoint task_start, Duration offset,
                           std::string name, std::string category,
                           std::uint64_t trace_id) {
  if (!enabled_) return;
  Record r;
  r.kind = Record::Kind::kInstant;
  r.track = track;
  r.depth = static_cast<int>(tracks_[track].open.size());
  r.task_start = task_start;
  r.begin_offset = offset;
  r.trace_id = trace_id;
  r.name = std::move(name);
  r.category = std::move(category);
  Push(std::move(r));
}

void Tracer::Attribute(int track, Duration billed) {
  total_charged_ += billed;
  auto& open = tracks_[track].open;
  if (open.empty()) {
    charge_by_category_["(unattributed)"] += billed;
    return;
  }
  for (auto& frame : open) frame.total += billed;
  open.back().self += billed;
  charge_by_category_[open.back().category] += billed;
}

void Tracer::Push(Record r) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(r));
    return;
  }
  // Ring full: the oldest record is overwritten — an accounted drop, not a
  // silent one. The counter is resolved on the first drop so wrap-free runs
  // never register it.
  ring_[head_] = std::move(r);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  if (dropped_ctr_ == nullptr && drop_registry_ != nullptr) {
    dropped_ctr_ = &drop_registry_->counter("sim.tracer_dropped");
  }
  if (dropped_ctr_ != nullptr) dropped_ctr_->Inc();
}

void Tracer::SetCapacity(std::size_t capacity) {
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.clear();
  head_ = 0;
}

std::vector<Tracer::Record> Tracer::Records() const {
  std::vector<Record> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  for (auto& t : tracks_) t.open.clear();
  charge_by_category_.clear();
  total_charged_ = Duration::Zero();
}

namespace {
// Begin-position ordering: spans were recorded at completion, which puts
// children before parents; exporters re-sort by synthesized begin position,
// parents (smaller depth) first at equal positions.
std::vector<Tracer::Record> SortedByBegin(std::vector<Tracer::Record> recs) {
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Tracer::Record& a, const Tracer::Record& b) {
                     const std::int64_t ta = a.task_start.ns() + a.begin_offset.ns();
                     const std::int64_t tb = b.task_start.ns() + b.begin_offset.ns();
                     if (ta != tb) return ta < tb;
                     if (a.track != b.track) return a.track < b.track;
                     return a.depth < b.depth;
                   });
  return recs;
}
}  // namespace

std::string Tracer::ExportText() const {
  std::ostringstream out;
  for (const Record& r : SortedByBegin(Records())) {
    out << '[' << MicrosFixed(r.task_start.ns() + r.begin_offset.ns())
        << "us] " << track_name(r.track) << ' ';
    for (int i = 0; i < r.depth; ++i) out << "  ";
    out << (r.kind == Record::Kind::kSpan ? r.name : "! " + r.name) << " ("
        << r.category << ")";
    if (r.trace_id != 0) out << " id=" << r.trace_id;
    if (r.kind == Record::Kind::kSpan) {
      out << " total=" << r.total.ns() << "ns self=" << r.self.ns() << "ns";
    }
    out << '\n';
  }
  if (dropped_ > 0) out << "(ring dropped " << dropped_ << " records)\n";
  return out.str();
}

std::string Tracer::ExportChromeJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    out << (first ? "" : ",")
        << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << JsonEscape(tracks_[t].name) << "\"}}";
    first = false;
  }
  for (const Record& r : SortedByBegin(Records())) {
    const std::int64_t begin_ns = r.task_start.ns() + r.begin_offset.ns();
    out << (first ? "" : ",") << "{\"ph\":\""
        << (r.kind == Record::Kind::kSpan ? 'X' : 'i') << "\",\"pid\":0,\"tid\":"
        << r.track << ",\"ts\":" << MicrosFixed(begin_ns);
    if (r.kind == Record::Kind::kSpan) {
      out << ",\"dur\":" << MicrosFixed(r.total.ns());
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"name\":\"" << JsonEscape(r.name) << "\",\"cat\":\""
        << JsonEscape(r.category) << "\",\"args\":{\"trace_id\":" << r.trace_id
        << ",\"self_ns\":" << r.self.ns() << ",\"total_ns\":" << r.total.ns()
        << "}}";
    first = false;
  }
  out << "]}";
  return out.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << ExportChromeJson() << '\n';
  return static_cast<bool>(f);
}

std::string Tracer::ExportChargeBreakdownJson() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [cat, d] : charge_by_category_) {
    out << (first ? "" : ",") << '"' << JsonEscape(cat) << "\":" << d.ns();
    first = false;
  }
  out << '}';
  return out.str();
}

}  // namespace sim
