#include "sim/chaos.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace sim {

const char* ChaosKindName(ChaosKind k) {
  switch (k) {
    case ChaosKind::kLinkDown: return "link-down";
    case ChaosKind::kLinkUp: return "link-up";
    case ChaosKind::kNicStall: return "nic-stall";
    case ChaosKind::kNicResume: return "nic-resume";
    case ChaosKind::kPartition: return "partition";
    case ChaosKind::kHeal: return "heal";
    case ChaosKind::kCrash: return "crash";
    case ChaosKind::kRestart: return "restart";
    case ChaosKind::kFuzzStorm: return "fuzz-storm";
    case ChaosKind::kFuzzCalm: return "fuzz-calm";
  }
  return "?";
}

namespace {

// Open [begin, end) windows already claimed on one target, so a random
// schedule never nests or overlaps faults on the same link/host.
struct Claimed {
  std::vector<std::pair<TimePoint, TimePoint>> windows;

  bool Overlaps(TimePoint b, TimePoint e) const {
    for (const auto& [wb, we] : windows) {
      if (b < we && wb < e) return true;
    }
    return false;
  }
  void Claim(TimePoint b, TimePoint e) { windows.emplace_back(b, e); }
};

}  // namespace

ChaosSchedule ChaosSchedule::Random(std::uint64_t seed, const ChaosConfig& config) {
  ChaosSchedule out;
  sim::Random rng(seed);  // qualified: `Random` alone names this function

  struct Family {
    ChaosKind down, up;
    double weight;
  };
  std::vector<Family> families;
  if (config.w_link_flap > 0.0 && config.links > 0) {
    families.push_back({ChaosKind::kLinkDown, ChaosKind::kLinkUp, config.w_link_flap});
  }
  if (config.w_crash > 0.0 && config.hosts > 0) {
    families.push_back({ChaosKind::kCrash, ChaosKind::kRestart, config.w_crash});
  }
  if (config.w_nic_stall > 0.0 && config.hosts > 0) {
    families.push_back({ChaosKind::kNicStall, ChaosKind::kNicResume, config.w_nic_stall});
  }
  if (config.w_partition > 0.0 && config.hosts >= 3) {
    families.push_back({ChaosKind::kPartition, ChaosKind::kHeal, config.w_partition});
  }
  if (config.w_fuzz > 0.0 && config.hosts > 0) {
    families.push_back({ChaosKind::kFuzzStorm, ChaosKind::kFuzzCalm, config.w_fuzz});
  }
  if (families.empty()) return out;
  double total_weight = 0.0;
  for (const auto& f : families) total_weight += f.weight;

  // Per-target claimed windows, keyed by (kind-group, ordinal). Partitions
  // are global: they claim a single shared slot.
  std::vector<Claimed> link_claims(static_cast<std::size_t>(std::max(config.links, 1)));
  std::vector<Claimed> host_claims(static_cast<std::size_t>(std::max(config.hosts, 1)));
  std::vector<Claimed> stall_claims(static_cast<std::size_t>(std::max(config.hosts, 1)));
  std::vector<Claimed> fuzz_claims(static_cast<std::size_t>(std::max(config.hosts, 1)));
  Claimed partition_claims;

  const int want = 1 + static_cast<int>(rng.UniformU64(
                           static_cast<std::uint64_t>(std::max(config.max_faults, 1))));
  const Duration span = config.horizon - config.start;
  for (int drawn = 0, attempts = 0; drawn < want && attempts < want * 8; ++attempts) {
    // Weighted family pick.
    double roll = rng.UniformDouble() * total_weight;
    const Family* fam = &families.back();
    for (const auto& f : families) {
      if (roll < f.weight) {
        fam = &f;
        break;
      }
      roll -= f.weight;
    }

    const Duration width = rng.UniformDuration(config.min_outage, config.max_outage);
    if (span <= width) continue;
    const TimePoint begin =
        TimePoint() + config.start + rng.UniformDuration(Duration::Zero(), span - width);
    const TimePoint end = begin + width;

    Claimed* claims = nullptr;
    int target = 0;
    std::uint64_t aux = 0;
    switch (fam->down) {
      case ChaosKind::kLinkDown:
        target = static_cast<int>(rng.UniformU64(static_cast<std::uint64_t>(config.links)));
        claims = &link_claims[static_cast<std::size_t>(target)];
        break;
      case ChaosKind::kCrash: {
        target = static_cast<int>(rng.UniformU64(static_cast<std::uint64_t>(config.hosts)));
        claims = &host_claims[static_cast<std::size_t>(target)];
        break;
      }
      case ChaosKind::kNicStall:
        target = static_cast<int>(rng.UniformU64(static_cast<std::uint64_t>(config.hosts)));
        claims = &stall_claims[static_cast<std::size_t>(target)];
        break;
      case ChaosKind::kFuzzStorm:
        // Storms deliberately may overlap crashes/stalls/flaps on the same
        // host: hostile traffic against an already-degraded machine is
        // exactly the composition this family exists to exercise. Only
        // storm-on-storm self-overlap is excluded.
        target = static_cast<int>(rng.UniformU64(static_cast<std::uint64_t>(config.hosts)));
        claims = &fuzz_claims[static_cast<std::size_t>(target)];
        aux = rng.NextU64();  // mutation seed: the window replays from it
        break;
      case ChaosKind::kPartition: {
        // Split hosts into two non-empty groups via a random bitmask.
        const std::uint64_t all = (1ull << config.hosts) - 1;
        aux = rng.UniformU64(all - 1) + 1;  // in [1, all-1]: both sides non-empty
        claims = &partition_claims;
        break;
      }
      default:
        continue;
    }
    if (claims->Overlaps(begin, end)) continue;
    // A crash window also excludes stalling that host (and vice versa):
    // stalling a dead NIC is meaningless and resuming a rebooted one is a
    // double-apply hazard.
    if (fam->down == ChaosKind::kCrash &&
        stall_claims[static_cast<std::size_t>(target)].Overlaps(begin, end)) {
      continue;
    }
    if (fam->down == ChaosKind::kNicStall &&
        host_claims[static_cast<std::size_t>(target)].Overlaps(begin, end)) {
      continue;
    }
    claims->Claim(begin, end);
    out.Add(begin, fam->down, target, aux);
    out.Add(end, fam->up, target, aux);
    ++drawn;
  }

  std::stable_sort(out.events_.begin(), out.events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return out;
}

void ChaosSchedule::Install(Simulator& sim, Handler handler) const {
  for (const ChaosEvent& e : events_) {
    sim.ScheduleAt(e.at, [handler, e] { handler(e); });
  }
}

std::string ChaosSchedule::Describe() const {
  std::ostringstream os;
  for (const ChaosEvent& e : events_) {
    os << "t=" << (e.at - TimePoint()).ns() << "ns " << ChaosKindName(e.kind) << " target="
       << e.target;
    if (e.aux != 0) os << " aux=0x" << std::hex << e.aux << std::dec;
    os << '\n';
  }
  return os.str();
}

}  // namespace sim
