// Structure-aware packet mutation for adversarial fuzzing.
//
// Mutates raw Ethernet frames *knowing* the classic encapsulation layout
// (eth / IPv4 / {tcp,udp,icmp}), so mutations land on the fields parsers
// actually branch on — length words, header offsets, option bytes,
// fragment fields — instead of diffusing into payload bytes nothing reads.
// Where a mutation lies about a length, the mutator re-seals the IP header
// checksum and the transport checksum so the lie survives checksum
// verification and reaches the deep structural validators it is aimed at;
// a lie that dies at the checksum line tests nothing.
//
// Lives in sim/ (not net/) deliberately: it manipulates byte vectors with
// the wire offsets written out longhand, exactly as an attacker crafting
// frames would — it must not inherit the victim's own header abstractions,
// or it could only ever produce frames the victim already believes in.
#ifndef PLEXUS_SIM_PACKET_MUTATOR_H_
#define PLEXUS_SIM_PACKET_MUTATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace sim {

class PacketMutator {
 public:
  enum class Op {
    kTruncate,     // cut the frame mid-header or mid-payload (runts)
    kBitFlip,      // classic dumb fuzzing: 1-3 random bit flips
    kLengthLie,    // a length/offset field that contradicts the frame
    kOptionSoup,   // TCP data offset stretched over garbage option bytes
    kFragOverlap,  // IP fragment fields forged: overlaps, silly offsets
    kGroBoundary,  // TCP seq/flags/window nudged to break coalescing runs
  };
  static constexpr int kOpCount = 6;
  static const char* OpName(Op op);

  explicit PacketMutator(std::uint64_t seed) : rng_(seed) {}

  // Applies one randomly chosen op. Ops needing structure the frame lacks
  // (e.g. kOptionSoup on an ARP frame) fall back to kBitFlip, so every
  // call mutates. Returns the op actually applied.
  Op Mutate(std::vector<std::uint8_t>& frame);

  // Applies a specific op; returns false (frame untouched) when the frame
  // cannot host it.
  bool Apply(Op op, std::vector<std::uint8_t>& frame);

  Random& rng() { return rng_; }

 private:
  Random rng_;
};

}  // namespace sim

#endif  // PLEXUS_SIM_PACKET_MUTATOR_H_
