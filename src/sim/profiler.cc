#include "sim/profiler.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>

namespace sim {

const char* Profiler::SiteName(int site) {
  switch (site) {
    case kEventRaise: return "event.raise";
    case kDemuxLookup: return "event.demux_lookup";
    case kHandlerGuard: return "event.guard";
    case kTimerSchedule: return "timer.schedule";
    case kTimerCancel: return "timer.cancel";
    case kTimerFire: return "timer.fire";
    case kSchedulerPop: return "scheduler.pop";
    case kSchedulerCascade: return "scheduler.cascade";
    case kMbufAlloc: return "mbuf.alloc";
    case kMbufFree: return "mbuf.free";
    case kMbufClone: return "mbuf.clone";
    case kDeferredHop: return "deferred.hop";
  }
  return "?";
}

const char* Profiler::ByteCounterName(int c) {
  switch (c) {
    case kMbufAllocBytes: return "mbuf.alloc_bytes";
    case kMbufCloneBytes: return "mbuf.clone_bytes";
  }
  return "?";
}

std::string Profiler::ToJson() {
  std::ostringstream out;
  out << "{\"schema\":\"plexus-profile-v1\",\"enabled\":"
      << (enabled() ? "true" : "false") << ",\"total_self_ns\":" << TotalSelfNs()
      << ",\"sites\":{";
  for (int i = 0; i < kSiteCount; ++i) {
    const SiteStats& s = stats_[i];
    out << (i == 0 ? "" : ",") << '"' << SiteName(i) << "\":{\"calls\":" << s.calls
        << ",\"total_ns\":" << s.total_ns << ",\"self_ns\":" << s.self_ns
        << ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < 64; ++b) {
      if (s.buckets[b] == 0) continue;
      // Upper bound of bucket b (inclusive): 0 for b==0, else 2^b - 1,
      // saturating at the top like sim::Histogram.
      const std::uint64_t ub =
          b == 0 ? 0
                 : (b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1);
      out << (first ? "" : ",") << '[' << ub << ',' << s.buckets[b] << ']';
      first = false;
    }
    out << "]}";
  }
  out << "},\"bytes\":{";
  for (int c = 0; c < kByteCounterCount; ++c) {
    out << (c == 0 ? "" : ",") << '"' << ByteCounterName(c) << "\":" << bytes_[c];
  }
  out << "}}";
  return out.str();
}

std::string Profiler::RankedTable() {
  std::array<int, kSiteCount> order;
  for (int i = 0; i < kSiteCount; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [](int a, int b) {
    if (stats_[a].self_ns != stats_[b].self_ns)
      return stats_[a].self_ns > stats_[b].self_ns;
    return a < b;
  });
  const std::uint64_t total_self = TotalSelfNs();
  std::ostringstream out;
  out << "engine self-time profile (wall clock)\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-22s %12s %14s %14s %8s %10s\n", "site",
                "calls", "self_ms", "total_ms", "self%", "ns/call");
  out << line;
  for (int i : order) {
    const SiteStats& s = stats_[i];
    if (s.calls == 0) continue;
    const double self_pct =
        total_self > 0 ? 100.0 * static_cast<double>(s.self_ns) /
                             static_cast<double>(total_self)
                       : 0.0;
    std::snprintf(line, sizeof(line), "  %-22s %12llu %14.3f %14.3f %7.1f%% %10.1f\n",
                  SiteName(i), static_cast<unsigned long long>(s.calls),
                  static_cast<double>(s.self_ns) / 1e6,
                  static_cast<double>(s.total_ns) / 1e6, self_pct,
                  static_cast<double>(s.total_ns) / static_cast<double>(s.calls));
    out << line;
  }
  std::snprintf(line, sizeof(line), "  %-22s %12s %14.3f\n", "(total self)", "",
                static_cast<double>(total_self) / 1e6);
  out << line;
  return out.str();
}

}  // namespace sim
