// A simulated disk with a minimal file-system interface.
//
// The paper's video server "reads video frame-by-frame off of the disk
// using SPIN's file system interface". This module provides that substrate:
// a Disk with seek/transfer timing that serializes requests (one arm), and
// a FrameStore that lays video clips out as fixed-size frames.
//
// Timing model: each read costs CPU for the file-system path (buffer-cache
// lookup, request setup), then the disk is busy for seek + rotational +
// transfer time with NO CPU involvement (DMA), and completion is delivered
// as an interrupt-priority task, like a NIC receive.
#ifndef PLEXUS_DRIVERS_DISK_H_
#define PLEXUS_DRIVERS_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "net/mbuf.h"
#include "sim/host.h"

namespace drivers {

struct DiskProfile {
  sim::Duration seek = sim::Duration::Micros(500);      // avg short seek (hot clip)
  sim::Duration rotation = sim::Duration::Micros(300);  // avg rotational delay
  std::int64_t transfer_bps = 160'000'000;              // ~20 MB/s (fast 1996 array)
  sim::Duration fs_path_fixed = sim::Duration::Micros(80);  // FS + driver CPU
  sim::Duration fs_path_per_byte = sim::Duration::Nanos(4); // buffer handling

  // A consumer-grade single spindle, for ablations.
  static DiskProfile Slow1996() {
    DiskProfile p;
    p.seek = sim::Duration::Millis(9);
    p.rotation = sim::Duration::Millis(4);
    p.transfer_bps = 40'000'000;  // 5 MB/s
    return p;
  }
};

class Disk {
 public:
  using Completion = std::function<void(net::MbufPtr data)>;

  Disk(sim::Host& host, DiskProfile profile = {}) : host_(host), profile_(profile) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Issues an asynchronous read of `len` bytes at `offset`. Must be called
  // from within a CPU task (it charges the FS path). The completion runs in
  // an interrupt-priority task when the transfer finishes. Data content is
  // synthesized deterministically from the offset.
  void Read(std::uint64_t offset, std::size_t len, Completion done);

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t bytes = 0;
    sim::Duration busy;  // total arm/transfer occupancy
  };
  const Stats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }

 private:
  struct Request {
    std::uint64_t offset;
    std::size_t len;
    Completion done;
  };

  void StartNext();
  void Complete(Request req);

  sim::Host& host_;
  DiskProfile profile_;
  std::deque<Request> queue_;
  bool busy_ = false;
  Stats stats_;
};

// A stored video clip: `frame_count` frames of `frame_bytes` each, read by
// index. Each frame's first word carries its index (so clients can detect
// drops/reordering).
class FrameStore {
 public:
  FrameStore(Disk& disk, std::size_t frame_bytes, std::uint32_t frame_count)
      : disk_(disk), frame_bytes_(frame_bytes), frame_count_(frame_count) {}

  std::size_t frame_bytes() const { return frame_bytes_; }
  std::uint32_t frame_count() const { return frame_count_; }

  // Reads frame `index % frame_count` (clips loop, like the paper's demo).
  void ReadFrame(std::uint32_t index, Disk::Completion done) {
    const std::uint32_t i = index % frame_count_;
    disk_.Read(static_cast<std::uint64_t>(i) * frame_bytes_, frame_bytes_, std::move(done));
  }

 private:
  Disk& disk_;
  std::size_t frame_bytes_;
  std::uint32_t frame_count_;
};

}  // namespace drivers

#endif  // PLEXUS_DRIVERS_DISK_H_
