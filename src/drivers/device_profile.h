// Device timing/behavior profiles for the three NICs of the paper's testbed.
//
// "Each workstation was equipped with ... a 10Mb/sec Ethernet, a 155Mb/sec
// Fore TCA-100 ATM interface on the TurboChannel I/O bus, an experimental
// 45Mb/sec Digital T3 network adapter ... Our ATM network interface cards
// use programmed I/O, limiting maximum bandwidth to the rate with which the
// CPU can read the data from the network adapter ... The T3 adapter uses
// DMA, and is able to deliver 45Mb/sec with minimal CPU involvement."
//
// A profile is pure data; the Nic model interprets it. The fixed per-packet
// driver costs are calibrated so that the driver-to-driver round-trip times
// and ceilings match Section 4 (see EXPERIMENTS.md).
#ifndef PLEXUS_DRIVERS_DEVICE_PROFILE_H_
#define PLEXUS_DRIVERS_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace drivers {

struct DeviceProfile {
  std::string name;
  std::int64_t bandwidth_bps = 0;
  sim::Duration propagation = sim::Duration::Zero();
  std::size_t mtu = 1500;

  // Framing.
  std::size_t min_frame = 0;        // pad short frames up to this (Ethernet)
  std::size_t frame_overhead = 0;   // preamble/CRC bytes added on the wire
  sim::Duration inter_frame_gap = sim::Duration::Zero();
  // Cell-based media (ATM/AAL5): wire occupancy is ceil(len/cell_payload) *
  // cell_size bytes. cell_payload == 0 disables cell framing.
  std::size_t cell_payload = 0;
  std::size_t cell_size = 0;

  // Data movement between memory and the adapter.
  bool pio = false;  // true: the CPU moves every byte (TurboChannel PIO)
  sim::Duration pio_tx_per_byte = sim::Duration::Zero();
  sim::Duration pio_rx_per_byte = sim::Duration::Zero();
  sim::Duration dma_tx_setup = sim::Duration::Zero();  // descriptor + doorbell
  sim::Duration dma_rx_setup = sim::Duration::Zero();

  // Fixed per-packet driver execution (start-io, buffer bookkeeping).
  sim::Duration tx_fixed = sim::Duration::Zero();
  sim::Duration rx_fixed = sim::Duration::Zero();

  // --- Overload control ------------------------------------------------------
  // Receive descriptor ring: frames arriving while `rx_ring_depth` frames
  // already await service are dropped at the wire (free drops — no CPU is
  // consumed), like a LANCE running out of rx descriptors. 0 = unbounded
  // (ablation only; real adapters always have a finite ring). The default
  // is deep enough that none of the paper-reproduction workloads ever
  // queue near it.
  std::size_t rx_ring_depth = 1024;
  // Interrupt->poll switch (receive-livelock avoidance): when interrupt-
  // level receive work exceeds `poll_threshold` of CPU time over a sliding
  // `poll_window`, the driver masks rx interrupts and drains the ring from
  // a task-priority polling loop, at most `poll_quota` frames per pass;
  // interrupts are re-enabled when the ring empties. threshold >= 1.0
  // disables the switch (the stock-driver behavior the paper inherits).
  double poll_threshold = 1.0;
  sim::Duration poll_window = sim::Duration::Millis(1);
  std::size_t poll_quota = 8;

  // Wire occupancy for a frame of `len` payload bytes.
  sim::Duration SerializationDelay(std::size_t len) const {
    std::size_t wire_bytes;
    if (cell_payload > 0) {
      const std::size_t cells = (len + cell_payload - 1) / cell_payload;
      wire_bytes = cells * cell_size;
    } else {
      wire_bytes = len < min_frame ? min_frame : len;
      wire_bytes += frame_overhead;
    }
    const double secs = static_cast<double>(wire_bytes) * 8.0 / static_cast<double>(bandwidth_bps);
    return sim::Duration::SecondsF(secs) + inter_frame_gap;
  }

  // CPU cost of handing a frame to the adapter (charged to the sender).
  sim::Duration TxCpuCost(std::size_t len) const {
    sim::Duration d = tx_fixed;
    if (pio) {
      d += pio_tx_per_byte * static_cast<std::int64_t>(len);
    } else {
      d += dma_tx_setup;
    }
    return d;
  }

  // CPU cost of pulling a received frame out of the adapter.
  sim::Duration RxCpuCost(std::size_t len) const {
    sim::Duration d = rx_fixed;
    if (pio) {
      d += pio_rx_per_byte * static_cast<std::int64_t>(len);
    } else {
      d += dma_rx_setup;
    }
    return d;
  }

  // --- The paper's three adapters -------------------------------------------

  // LANCE-class 10 Mb/s Ethernet. The stock DIGITAL UNIX driver has heavy
  // fixed costs (the paper's "faster device driver" experiment cuts them).
  static DeviceProfile Ethernet10() {
    DeviceProfile p;
    p.name = "ethernet";
    p.bandwidth_bps = 10'000'000;
    p.propagation = sim::Duration::Micros(5);
    p.mtu = 1500;
    p.min_frame = 60;          // + 4 CRC = 64 on the wire
    p.frame_overhead = 12;     // preamble + CRC
    p.inter_frame_gap = sim::Duration::Nanos(9600);
    p.pio = false;
    p.dma_tx_setup = sim::Duration::Micros(8);
    p.dma_rx_setup = sim::Duration::Micros(8);
    p.tx_fixed = sim::Duration::Micros(100);
    p.rx_fixed = sim::Duration::Micros(105);
    return p;
  }

  // Ethernet with the experimental fast SPIN driver (Section 4.1).
  static DeviceProfile Ethernet10FastDriver() {
    DeviceProfile p = Ethernet10();
    p.name = "ethernet-fast";
    p.tx_fixed = sim::Duration::Micros(40);
    p.rx_fixed = sim::Duration::Micros(40);
    p.dma_tx_setup = sim::Duration::Micros(3);
    p.dma_rx_setup = sim::Duration::Micros(3);
    return p;
  }

  // Fore TCA-100 on TurboChannel: 155 Mb/s line rate, programmed I/O.
  // TurboChannel word reads are ~600ns (150 ns/byte), which is what caps
  // reliable driver-to-driver transfers near 53 Mb/s in the paper.
  static DeviceProfile ForeAtm155() {
    DeviceProfile p;
    p.name = "fore-atm";
    p.bandwidth_bps = 155'000'000;
    p.propagation = sim::Duration::Micros(10);  // through the ForeRunner switch
    p.mtu = 9180;
    p.cell_payload = 48;
    p.cell_size = 53;
    p.pio = true;
    p.pio_tx_per_byte = sim::Duration::Nanos(100);  // posted writes
    p.pio_rx_per_byte = sim::Duration::Nanos(150);  // stalled reads
    p.tx_fixed = sim::Duration::Micros(72);
    p.rx_fixed = sim::Duration::Micros(72);
    return p;
  }

  static DeviceProfile ForeAtm155FastDriver() {
    DeviceProfile p = ForeAtm155();
    p.name = "fore-atm-fast";
    p.tx_fixed = sim::Duration::Micros(41);
    p.rx_fixed = sim::Duration::Micros(41);
    return p;
  }

  // Digital experimental T3 adapter: 45 Mb/s, DMA, back-to-back link.
  static DeviceProfile DecT3() {
    DeviceProfile p;
    p.name = "dec-t3";
    p.bandwidth_bps = 45'000'000;
    p.propagation = sim::Duration::Micros(2);  // back-to-back
    p.mtu = 4470;
    p.pio = false;
    p.dma_tx_setup = sim::Duration::Micros(15);
    p.dma_rx_setup = sim::Duration::Micros(12);
    p.tx_fixed = sim::Duration::Micros(55);
    p.rx_fixed = sim::Duration::Micros(52);
    return p;
  }
};

}  // namespace drivers

#endif  // PLEXUS_DRIVERS_DEVICE_PROFILE_H_
