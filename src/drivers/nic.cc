#include "drivers/nic.h"

#include <cassert>

#include "net/headers.h"
#include "net/mbuf_pool.h"
#include "net/view.h"

namespace drivers {

Nic::Nic(sim::Host& host, DeviceProfile profile, net::MacAddress mac)
    : host_(host),
      profile_(std::move(profile)),
      mac_(mac),
      metrics_prefix_(host.metrics().UniqueName("nic") + "."),
      tx_frames_(host.metrics().counter(metrics_prefix_ + "tx_frames")),
      tx_bytes_(host.metrics().counter(metrics_prefix_ + "tx_bytes")),
      rx_frames_(host.metrics().counter(metrics_prefix_ + "rx_frames")),
      rx_bytes_(host.metrics().counter(metrics_prefix_ + "rx_bytes")),
      rx_filtered_(host.metrics().counter(metrics_prefix_ + "rx_filtered")),
      rx_dropped_(host.metrics().counter(metrics_prefix_ + "rx_dropped")),
      rx_ring_drops_(host.metrics().counter(metrics_prefix_ + "rx_ring_drops")),
      rx_pool_drops_(host.metrics().counter(metrics_prefix_ + "rx_pool_drops")),
      poll_entries_(host.metrics().counter(metrics_prefix_ + "poll_entries")),
      poll_exits_(host.metrics().counter(metrics_prefix_ + "poll_exits")),
      rx_ring_gauge_(host.metrics().gauge(metrics_prefix_ + "rx_ring")),
      index_(next_index_++) {}

void Nic::ResetStats() {
  tx_frames_.Reset();
  tx_bytes_.Reset();
  rx_frames_.Reset();
  rx_bytes_.Reset();
  rx_filtered_.Reset();
  rx_dropped_.Reset();
  rx_ring_drops_.Reset();
  rx_pool_drops_.Reset();
  poll_entries_.Reset();
  poll_exits_.Reset();
}

void Nic::OnCarrierChange(bool up) {
  if (carrier_ == up) return;
  carrier_ = up;
  if (carrier_gauge_ == nullptr) {
    carrier_downs_ = &host_.metrics().counter(metrics_prefix_ + "carrier_downs");
    carrier_gauge_ = &host_.metrics().gauge(metrics_prefix_ + "carrier");
  }
  carrier_gauge_->Set(up ? 1 : 0);
  if (!up) carrier_downs_->Inc();
  host_.TraceInstant(up ? "nic.carrier.up" : "nic.carrier.down", "driver");
}

void Nic::SetStalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (stalls_ == nullptr) {
    stalls_ = &host_.metrics().counter(metrics_prefix_ + "stalls");
  }
  host_.TraceInstant(stalled ? "nic.stall" : "nic.resume", "driver");
  if (stalled) {
    stalls_->Inc();
    return;
  }
  // Resume: drain whatever accumulated. In polled mode the poll task owns
  // the ring; re-kick it (the stalled one returned without rescheduling).
  // In interrupt mode raise one latched interrupt per queued frame.
  if (polling_) {
    host_.Submit(sim::Priority::kThread, [this] { PollTask(); });
  } else {
    for (std::size_t i = rx_ring_.size(); i > 0; --i) {
      host_.Submit(sim::Priority::kInterrupt, [this] { RxInterrupt(); });
    }
  }
}

void Nic::Reset() {
  rx_ring_.clear();  // buffers return to the pool as their MbufPtrs die
  rx_ring_gauge_.Set(0);
  polling_ = false;
  stalled_ = false;
  window_start_ = sim::TimePoint();
  window_work_ = sim::Duration::Zero();
}

void Nic::Transmit(net::MbufPtr frame) {
  assert(medium_ != nullptr && "NIC not attached to a medium");
  assert(host_.in_task() && "Transmit must run inside a CPU task");
  // A frame that reaches the wire untagged can never be followed; tag here
  // so even packets originated below IP (ARP, raw ethernet) are traceable.
  if (host_.tracing() && frame->pkthdr().trace_id == 0) {
    frame->pkthdr().trace_id = host_.tracer().NextTraceId();
  }
  sim::TraceSpan span(host_, "nic.tx", "driver", frame->pkthdr().trace_id);
  const std::size_t len = frame->PacketLength();
  host_.Charge(profile_.TxCpuCost(len));
  tx_frames_.Inc();
  tx_bytes_.Inc(len);
  // The frame reaches the wire when the CPU finishes issuing the I/O.
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  host_.AfterTask([this, shared]() mutable {
    medium_->Transmit(this, net::MbufPtr(shared->ShareClone()));
  });
}

void Nic::DeliverFromWire(net::MbufPtr frame, bool check_address) {
  // Powered off (host crashed): frames die at the wire, free. No counter —
  // the host that would own the count is dead.
  if (!powered_) return;
  if (check_address && !promiscuous_) {
    // Filter on the destination MAC in the Ethernet header.
    try {
      auto hdr = net::ViewPacket<net::EthernetHeader>(*frame);
      if (hdr.dst != mac_ && !hdr.dst.IsBroadcast() && !hdr.dst.IsMulticast()) {
        rx_filtered_.Inc();
        return;
      }
    } catch (const net::ViewError&) {
      rx_filtered_.Inc();  // runt frame
      return;
    }
  }
  // Finite descriptor ring: frames arriving while it is full die on the
  // wire. A free drop — no buffer is consumed and no CPU ever runs for the
  // frame — which is what keeps saturation survivable.
  if (profile_.rx_ring_depth > 0 && rx_ring_.size() >= profile_.rx_ring_depth) {
    rx_ring_drops_.Inc();
    rx_dropped_.Inc();
    host_.TraceInstant("nic.rx.ring_drop", "drop", frame->pkthdr().trace_id);
    return;
  }
  // Refill the descriptor from the host's bounded mbuf pool: an exhausted
  // pool is the same wire drop, not an unbounded heap allocation.
  net::MbufPtr buf;
  if (net::MbufPool* pool = host_.mbuf_pool(); pool != nullptr) {
    buf = pool->TryCopy(*frame);
    if (buf == nullptr) {
      rx_pool_drops_.Inc();
      rx_dropped_.Inc();
      host_.TraceInstant("nic.rx.pool_drop", "drop", frame->pkthdr().trace_id);
      return;
    }
  } else {
    buf = std::move(frame);
  }
  const std::size_t len = buf->PacketLength();
  rx_frames_.Inc();
  rx_bytes_.Inc(len);
  buf->pkthdr().rcvif = index_;
  rx_ring_.push_back(std::move(buf));
  rx_ring_gauge_.Set(static_cast<std::int64_t>(rx_ring_.size()));

  // Raise the device interrupt: driver receive work runs at interrupt
  // priority; the callback is the bottom of the protocol graph. In polled
  // mode rx interrupts are masked — the poll task owns the ring. A stalled
  // NIC raises nothing: the ring accumulates until resume (or overflows).
  if (!polling_ && !stalled_) {
    host_.Submit(sim::Priority::kInterrupt, [this] { RxInterrupt(); });
  }
}

void Nic::RxInterrupt() {
  // Masked (the poll loop took over after this interrupt was raised),
  // stalled, or spurious (the poll loop already consumed the frame): a
  // free no-op.
  if (polling_ || stalled_ || rx_ring_.empty()) return;
  if (batch_rx_callback_ && sim::BatchConfig::enabled() && rx_ring_.size() > 1) {
    // Frames accumulated behind this interrupt (the CPU was busy, or
    // several arrived at one instant): drain them as one burst. A lone
    // frame takes the per-packet path below — byte-identical to the
    // unbatched engine.
    DeliverBurst(/*polled=*/false, net::MbufBatch::kCapacity);
  } else {
    DeliverOne(/*polled=*/false);
  }
  NoteRxWork(host_.charged_so_far());
}

void Nic::DeliverOne(bool polled) {
  net::MbufPtr buf = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  rx_ring_gauge_.Set(static_cast<std::int64_t>(rx_ring_.size()));
  const std::size_t len = buf->PacketLength();
  if (host_.tracing() && buf->pkthdr().trace_id == 0) {
    buf->pkthdr().trace_id = host_.tracer().NextTraceId();
  }
  const std::uint64_t tid = buf->pkthdr().trace_id;
  sim::PacketTraceScope packet_scope(host_, tid);
  sim::TraceSpan span(host_, polled ? "nic.rx.poll" : "nic.rx", "driver", tid);
  const auto& cm = host_.costs();
  if (!polled) host_.Charge(cm.interrupt_entry);
  host_.Charge(profile_.RxCpuCost(len));
  if (rx_callback_) rx_callback_(std::move(buf));
  if (!polled) host_.Charge(cm.interrupt_exit);
}

void Nic::DeliverBurst(bool polled, std::size_t max_frames) {
  if (rx_bursts_ == nullptr) {
    rx_bursts_ = &host_.metrics().counter(metrics_prefix_ + "rx_bursts");
    rx_burst_frames_ =
        &host_.metrics().counter(metrics_prefix_ + "rx_burst_frames");
  }
  const auto& cm = host_.costs();
  if (!polled) host_.Charge(cm.interrupt_entry);
  sim::TraceSpan span(host_, polled ? "nic.rx.poll_burst" : "nic.rx.burst",
                      "driver");
  net::MbufBatch batch;
  while (batch.size() < max_frames && !batch.full() && !rx_ring_.empty()) {
    net::MbufPtr buf = std::move(rx_ring_.front());
    rx_ring_.pop_front();
    if (host_.tracing() && buf->pkthdr().trace_id == 0) {
      buf->pkthdr().trace_id = host_.tracer().NextTraceId();
    }
    // Descriptor handling stays per-frame; only entry/exit and the upcall
    // are amortized across the burst.
    host_.Charge(profile_.RxCpuCost(buf->PacketLength()));
    batch.PushBack(std::move(buf));
  }
  rx_ring_gauge_.Set(static_cast<std::int64_t>(rx_ring_.size()));
  rx_bursts_->Inc();
  rx_burst_frames_->Inc(batch.size());
  batch_rx_callback_(std::move(batch));
  if (!polled) host_.Charge(cm.interrupt_exit);
}

void Nic::NoteRxWork(sim::Duration d) {
  if (profile_.poll_threshold >= 1.0 || profile_.poll_window.is_zero()) return;
  const sim::TimePoint now = host_.Now();
  if (now - window_start_ >= profile_.poll_window) {
    window_start_ = now;
    window_work_ = sim::Duration::Zero();
  }
  window_work_ += d;
  if (!polling_ &&
      static_cast<double>(window_work_.ns()) >
          profile_.poll_threshold * static_cast<double>(profile_.poll_window.ns())) {
    EnterPollMode();
  }
}

void Nic::EnterPollMode() {
  // Runs inside the tripping rx interrupt: mask rx interrupts (one CSR
  // write) and hand the ring to a task-priority poll loop, which competes
  // fairly — FIFO — with protocol threads and applications. That fairness
  // is the livelock fix.
  polling_ = true;
  poll_entries_.Inc();
  host_.Charge(host_.costs().intr_mask);
  host_.TraceInstant("nic.poll.enter", "driver");
  host_.Submit(sim::Priority::kThread, [this] { PollTask(); });
}

void Nic::PollTask() {
  if (!polling_) return;
  if (stalled_) return;  // wedged: SetStalled(false) re-kicks the loop
  if (rx_ring_.empty()) {
    // Drained: unmask and fall back to interrupts.
    polling_ = false;
    poll_exits_.Inc();
    host_.Charge(host_.costs().intr_mask);
    host_.TraceInstant("nic.poll.exit", "driver");
    return;
  }
  sim::TraceSpan span(host_, "nic.poll", "driver");
  host_.Charge(host_.costs().poll_entry);
  const std::size_t quota = profile_.poll_quota > 0 ? profile_.poll_quota : 1;
  if (batch_rx_callback_ && sim::BatchConfig::enabled() && rx_ring_.size() > 1) {
    // One quota-bounded burst per poll pass: the pass's frames travel the
    // graph as a single deferred-queue hop instead of one hop each.
    DeliverBurst(/*polled=*/true, quota);
  } else {
    for (std::size_t i = 0; i < quota && !rx_ring_.empty(); ++i) {
      DeliverOne(/*polled=*/true);
    }
  }
  // Yield between passes even when more frames wait — the quota is what
  // bounds how long the poll loop can starve other threads.
  host_.Submit(sim::Priority::kThread, [this] { PollTask(); });
}

}  // namespace drivers
