#include "drivers/nic.h"

#include <cassert>

#include "net/headers.h"
#include "net/view.h"
#include "sim/trace.h"

namespace drivers {

Nic::Nic(sim::Host& host, DeviceProfile profile, net::MacAddress mac)
    : host_(host), profile_(std::move(profile)), mac_(mac), index_(next_index_++) {}

void Nic::Transmit(net::MbufPtr frame) {
  assert(medium_ != nullptr && "NIC not attached to a medium");
  assert(host_.in_task() && "Transmit must run inside a CPU task");
  const std::size_t len = frame->PacketLength();
  host_.Charge(profile_.TxCpuCost(len));
  stats_.tx_frames++;
  stats_.tx_bytes += len;
  sim::Trace::Log(host_.Now(), "%s %s tx %zu bytes", host_.name().c_str(),
                  profile_.name.c_str(), len);
  // The frame reaches the wire when the CPU finishes issuing the I/O.
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  host_.AfterTask([this, shared]() mutable {
    medium_->Transmit(this, net::MbufPtr(shared->ShareClone()));
  });
}

void Nic::DeliverFromWire(net::MbufPtr frame, bool check_address) {
  if (check_address && !promiscuous_) {
    // Filter on the destination MAC in the Ethernet header.
    try {
      auto hdr = net::ViewPacket<net::EthernetHeader>(*frame);
      if (hdr.dst != mac_ && !hdr.dst.IsBroadcast() && !hdr.dst.IsMulticast()) {
        ++stats_.rx_filtered;
        return;
      }
    } catch (const net::ViewError&) {
      ++stats_.rx_filtered;  // runt frame
      return;
    }
  }
  const std::size_t len = frame->PacketLength();
  stats_.rx_frames++;
  stats_.rx_bytes += len;
  frame->pkthdr().rcvif = index_;

  // Raise the device interrupt: driver receive work runs at interrupt
  // priority; the callback is the bottom of the protocol graph.
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  host_.Submit(sim::Priority::kInterrupt, [this, shared, len]() mutable {
    const auto& cm = host_.costs();
    host_.Charge(cm.interrupt_entry);
    host_.Charge(profile_.RxCpuCost(len));
    if (rx_callback_) rx_callback_(net::MbufPtr(shared->ShareClone()));
    host_.Charge(cm.interrupt_exit);
  });
}

}  // namespace drivers
