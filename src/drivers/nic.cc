#include "drivers/nic.h"

#include <cassert>

#include "net/headers.h"
#include "net/view.h"

namespace drivers {

Nic::Nic(sim::Host& host, DeviceProfile profile, net::MacAddress mac)
    : host_(host),
      profile_(std::move(profile)),
      mac_(mac),
      metrics_prefix_(host.metrics().UniqueName("nic") + "."),
      tx_frames_(host.metrics().counter(metrics_prefix_ + "tx_frames")),
      tx_bytes_(host.metrics().counter(metrics_prefix_ + "tx_bytes")),
      rx_frames_(host.metrics().counter(metrics_prefix_ + "rx_frames")),
      rx_bytes_(host.metrics().counter(metrics_prefix_ + "rx_bytes")),
      rx_filtered_(host.metrics().counter(metrics_prefix_ + "rx_filtered")),
      index_(next_index_++) {}

void Nic::ResetStats() {
  tx_frames_.Reset();
  tx_bytes_.Reset();
  rx_frames_.Reset();
  rx_bytes_.Reset();
  rx_filtered_.Reset();
}

void Nic::Transmit(net::MbufPtr frame) {
  assert(medium_ != nullptr && "NIC not attached to a medium");
  assert(host_.in_task() && "Transmit must run inside a CPU task");
  // A frame that reaches the wire untagged can never be followed; tag here
  // so even packets originated below IP (ARP, raw ethernet) are traceable.
  if (host_.tracing() && frame->pkthdr().trace_id == 0) {
    frame->pkthdr().trace_id = host_.tracer().NextTraceId();
  }
  sim::TraceSpan span(host_, "nic.tx", "driver", frame->pkthdr().trace_id);
  const std::size_t len = frame->PacketLength();
  host_.Charge(profile_.TxCpuCost(len));
  tx_frames_.Inc();
  tx_bytes_.Inc(len);
  // The frame reaches the wire when the CPU finishes issuing the I/O.
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  host_.AfterTask([this, shared]() mutable {
    medium_->Transmit(this, net::MbufPtr(shared->ShareClone()));
  });
}

void Nic::DeliverFromWire(net::MbufPtr frame, bool check_address) {
  if (check_address && !promiscuous_) {
    // Filter on the destination MAC in the Ethernet header.
    try {
      auto hdr = net::ViewPacket<net::EthernetHeader>(*frame);
      if (hdr.dst != mac_ && !hdr.dst.IsBroadcast() && !hdr.dst.IsMulticast()) {
        rx_filtered_.Inc();
        return;
      }
    } catch (const net::ViewError&) {
      rx_filtered_.Inc();  // runt frame
      return;
    }
  }
  const std::size_t len = frame->PacketLength();
  rx_frames_.Inc();
  rx_bytes_.Inc(len);
  frame->pkthdr().rcvif = index_;

  // Raise the device interrupt: driver receive work runs at interrupt
  // priority; the callback is the bottom of the protocol graph.
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  host_.Submit(sim::Priority::kInterrupt, [this, shared, len]() mutable {
    if (host_.tracing() && shared->pkthdr().trace_id == 0) {
      shared->pkthdr().trace_id = host_.tracer().NextTraceId();
    }
    const std::uint64_t tid = shared->pkthdr().trace_id;
    sim::PacketTraceScope packet_scope(host_, tid);
    sim::TraceSpan span(host_, "nic.rx", "driver", tid);
    const auto& cm = host_.costs();
    host_.Charge(cm.interrupt_entry);
    host_.Charge(profile_.RxCpuCost(len));
    if (rx_callback_) rx_callback_(net::MbufPtr(shared->ShareClone()));
    host_.Charge(cm.interrupt_exit);
  });
}

}  // namespace drivers
