#include "drivers/disk.h"

#include "net/byte_order.h"

namespace drivers {

void Disk::Read(std::uint64_t offset, std::size_t len, Completion done) {
  // File-system path runs on the CPU in the caller's task.
  host_.Charge(profile_.fs_path_fixed +
               profile_.fs_path_per_byte * static_cast<std::int64_t>(len));
  queue_.push_back(Request{offset, len, std::move(done)});
  if (!busy_) StartNext();
}

void Disk::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();

  const double transfer_secs =
      static_cast<double>(req.len) * 8.0 / static_cast<double>(profile_.transfer_bps);
  const sim::Duration service =
      profile_.seek + profile_.rotation + sim::Duration::SecondsF(transfer_secs);
  stats_.busy += service;

  host_.simulator().Schedule(service, [this, req = std::move(req)]() mutable {
    Complete(std::move(req));
    StartNext();
  });
}

void Disk::Complete(Request req) {
  ++stats_.reads;
  stats_.bytes += req.len;
  // Synthesize deterministic content: each 4-byte word is offset/4 + i.
  auto data = net::Mbuf::Allocate(req.len);
  for (std::size_t i = 0; i + 4 <= req.len && i < 64; i += 4) {
    const net::BigEndian32 word(static_cast<std::uint32_t>(req.offset / 4 + i / 4));
    data->CopyIn(i, {reinterpret_cast<const std::byte*>(&word), 4});
  }
  // Completion interrupt, like a NIC receive.
  auto shared = std::shared_ptr<net::Mbuf>(data.release());
  host_.Submit(sim::Priority::kInterrupt, [this, shared, done = std::move(req.done)] {
    host_.Charge(host_.costs().interrupt_entry + host_.costs().interrupt_exit);
    done(net::MbufPtr(shared->ShareClone()));
  });
}

}  // namespace drivers
