// Transmission media connecting NICs: point-to-point links and a shared
// Ethernet segment, with optional fault injection (loss, duplication,
// corruption, jitter, reordering) for protocol robustness tests.
#ifndef PLEXUS_DRIVERS_MEDIUM_H_
#define PLEXUS_DRIVERS_MEDIUM_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/mbuf.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace drivers {

class Nic;

// Fault model applied per frame as it enters the medium.
struct Faults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double corrupt_probability = 0.0;  // flip one random byte of the frame
  double truncate_probability = 0.0;  // deliver only a random prefix of the frame
  double reorder_probability = 0.0;  // hold the frame, deliver after the next one
  sim::Duration jitter_max = sim::Duration::Zero();  // extra uniform delay
};

class Medium {
 public:
  explicit Medium(sim::Simulator& s, std::uint64_t fault_seed = 0x5eed)
      : sim_(s), rng_(fault_seed) {}
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void Attach(Nic* nic) { taps_.push_back(nic); }

  // Called by a NIC at the instant its frame hits the wire.
  virtual void Transmit(Nic* from, net::MbufPtr frame) = 0;

  void set_faults(const Faults& f) { faults_ = f; }
  const Faults& faults() const { return faults_; }

  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_carried() const { return frames_carried_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t frames_truncated() const { return frames_truncated_; }
  std::uint64_t frames_reordered() const { return frames_reordered_; }

 protected:
  // Applies the fault model; returns the number of copies to deliver
  // (0 = dropped, 1 = normal, 2 = duplicated).
  int FaultCopies() {
    if (faults_.drop_probability > 0.0 && rng_.Bernoulli(faults_.drop_probability)) {
      ++frames_dropped_;
      return 0;
    }
    ++frames_carried_;
    if (faults_.duplicate_probability > 0.0 && rng_.Bernoulli(faults_.duplicate_probability)) {
      return 2;
    }
    return 1;
  }

  sim::Duration Jitter() {
    if (faults_.jitter_max.is_zero()) return sim::Duration::Zero();
    return rng_.UniformDuration(sim::Duration::Zero(), faults_.jitter_max);
  }

  // Reordering: at most one frame is held at a time; a held frame skips
  // delivery and is released just after the *next* transmitted frame's
  // arrival (so the two swap places on the wire). A frame held when the
  // simulation ends is never delivered — indistinguishable from tail loss,
  // which upper layers must tolerate anyway.
  bool MaybeHold(Nic* from, std::shared_ptr<net::Mbuf> frame) {
    if (faults_.reorder_probability <= 0.0 || held_frame_ != nullptr ||
        !rng_.Bernoulli(faults_.reorder_probability)) {
      return false;
    }
    ++frames_reordered_;
    held_from_ = from;
    held_frame_ = std::move(frame);
    return true;
  }

  // Returns {original sender, frame} of the held frame, clearing the hold.
  std::pair<Nic*, std::shared_ptr<net::Mbuf>> TakeHeld() {
    auto out = std::make_pair(held_from_, std::move(held_frame_));
    held_from_ = nullptr;
    held_frame_ = nullptr;
    return out;
  }

  // Possibly corrupts a frame in place (returns a clone with one byte
  // flipped). Checksums downstream are expected to catch this.
  net::MbufPtr MaybeCorrupt(net::MbufPtr frame) {
    if (faults_.corrupt_probability <= 0.0 ||
        !rng_.Bernoulli(faults_.corrupt_probability) || frame->PacketLength() == 0) {
      return frame;
    }
    ++frames_corrupted_;
    auto copy = frame->DeepCopy();
    const std::size_t pos = rng_.UniformU64(copy->PacketLength());
    std::byte b;
    copy->CopyOut(pos, {&b, 1});
    b ^= std::byte{0x40};
    copy->CopyIn(pos, {&b, 1});
    return copy;
  }

  // Possibly truncates a frame (a collision fragment / aborted DMA): only a
  // random non-empty prefix reaches the receivers. Every header parse
  // downstream must survive the short frame.
  net::MbufPtr MaybeTruncate(net::MbufPtr frame) {
    if (faults_.truncate_probability <= 0.0 ||
        !rng_.Bernoulli(faults_.truncate_probability) || frame->PacketLength() <= 1) {
      return frame;
    }
    ++frames_truncated_;
    auto copy = frame->DeepCopy();
    const std::size_t keep = 1 + rng_.UniformU64(copy->PacketLength() - 1);
    copy->TrimBack(copy->PacketLength() - keep);
    return copy;
  }

  sim::Simulator& sim_;
  sim::Random rng_;
  std::vector<Nic*> taps_;
  Faults faults_;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_carried_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_truncated_ = 0;
  std::uint64_t frames_reordered_ = 0;
  Nic* held_from_ = nullptr;
  std::shared_ptr<net::Mbuf> held_frame_;
};

// Full-duplex point-to-point link (the ATM virtual circuit through the
// ForeRunner switch, or the back-to-back T3 connection). Each direction
// serializes independently.
class PointToPointLink : public Medium {
 public:
  using Medium::Medium;
  void Transmit(Nic* from, net::MbufPtr frame) override;

 private:
  sim::TimePoint dir_free_[2];  // per-direction earliest next transmit
};

// Half-duplex shared segment ("a private Ethernet segment"): one frame on
// the wire at a time; every other tap receives each frame (NICs filter by
// destination MAC).
class EthernetSegment : public Medium {
 public:
  using Medium::Medium;
  void Transmit(Nic* from, net::MbufPtr frame) override;

 private:
  sim::TimePoint wire_free_;
};

}  // namespace drivers

#endif  // PLEXUS_DRIVERS_MEDIUM_H_
