// Transmission media connecting NICs: point-to-point links and a shared
// Ethernet segment, with optional fault injection (loss, duplication,
// jitter) for protocol robustness tests.
#ifndef PLEXUS_DRIVERS_MEDIUM_H_
#define PLEXUS_DRIVERS_MEDIUM_H_

#include <cstdint>
#include <vector>

#include "net/mbuf.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace drivers {

class Nic;

// Fault model applied per frame as it enters the medium.
struct Faults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double corrupt_probability = 0.0;  // flip one random byte of the frame
  sim::Duration jitter_max = sim::Duration::Zero();  // extra uniform delay
};

class Medium {
 public:
  explicit Medium(sim::Simulator& s, std::uint64_t fault_seed = 0x5eed)
      : sim_(s), rng_(fault_seed) {}
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void Attach(Nic* nic) { taps_.push_back(nic); }

  // Called by a NIC at the instant its frame hits the wire.
  virtual void Transmit(Nic* from, net::MbufPtr frame) = 0;

  void set_faults(const Faults& f) { faults_ = f; }
  const Faults& faults() const { return faults_; }

  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_carried() const { return frames_carried_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }

 protected:
  // Applies the fault model; returns the number of copies to deliver
  // (0 = dropped, 1 = normal, 2 = duplicated).
  int FaultCopies() {
    if (faults_.drop_probability > 0.0 && rng_.Bernoulli(faults_.drop_probability)) {
      ++frames_dropped_;
      return 0;
    }
    ++frames_carried_;
    if (faults_.duplicate_probability > 0.0 && rng_.Bernoulli(faults_.duplicate_probability)) {
      return 2;
    }
    return 1;
  }

  sim::Duration Jitter() {
    if (faults_.jitter_max.is_zero()) return sim::Duration::Zero();
    return rng_.UniformDuration(sim::Duration::Zero(), faults_.jitter_max);
  }

  // Possibly corrupts a frame in place (returns a clone with one byte
  // flipped). Checksums downstream are expected to catch this.
  net::MbufPtr MaybeCorrupt(net::MbufPtr frame) {
    if (faults_.corrupt_probability <= 0.0 ||
        !rng_.Bernoulli(faults_.corrupt_probability) || frame->PacketLength() == 0) {
      return frame;
    }
    ++frames_corrupted_;
    auto copy = frame->DeepCopy();
    const std::size_t pos = rng_.UniformU64(copy->PacketLength());
    std::byte b;
    copy->CopyOut(pos, {&b, 1});
    b ^= std::byte{0x40};
    copy->CopyIn(pos, {&b, 1});
    return copy;
  }

  sim::Simulator& sim_;
  sim::Random rng_;
  std::vector<Nic*> taps_;
  Faults faults_;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_carried_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

// Full-duplex point-to-point link (the ATM virtual circuit through the
// ForeRunner switch, or the back-to-back T3 connection). Each direction
// serializes independently.
class PointToPointLink : public Medium {
 public:
  using Medium::Medium;
  void Transmit(Nic* from, net::MbufPtr frame) override;

 private:
  sim::TimePoint dir_free_[2];  // per-direction earliest next transmit
};

// Half-duplex shared segment ("a private Ethernet segment"): one frame on
// the wire at a time; every other tap receives each frame (NICs filter by
// destination MAC).
class EthernetSegment : public Medium {
 public:
  using Medium::Medium;
  void Transmit(Nic* from, net::MbufPtr frame) override;

 private:
  sim::TimePoint wire_free_;
};

}  // namespace drivers

#endif  // PLEXUS_DRIVERS_MEDIUM_H_
