// Transmission media connecting NICs: point-to-point links and a shared
// Ethernet segment, with optional fault injection (loss, duplication,
// corruption, jitter, reordering, correlated burst loss) for protocol
// robustness tests.
//
// Structural faults ride on top of the per-frame fault model: a medium has a
// carrier (link up/down — frames sent into a dead link vanish for free, and
// attached NICs are notified so they can export carrier metrics), and a
// shared segment can be partitioned into two groups of taps that cannot
// reach each other until the partition heals. Both are driven externally,
// typically by a sim::ChaosSchedule.
#ifndef PLEXUS_DRIVERS_MEDIUM_H_
#define PLEXUS_DRIVERS_MEDIUM_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/mbuf.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace drivers {

class Nic;

// Fault model applied per frame as it enters the medium.
struct Faults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double corrupt_probability = 0.0;  // flip one random byte of the frame
  double truncate_probability = 0.0;  // deliver only a random prefix of the frame
  double reorder_probability = 0.0;  // hold the frame, deliver after the next one
  sim::Duration jitter_max = sim::Duration::Zero();  // extra uniform delay

  // Gilbert–Elliott correlated (burst) loss: a two-state Markov chain
  // advanced once per frame. In the Good state frames drop with
  // ge_loss_good, in the Bad state with ge_loss_bad; the chain moves
  // Good->Bad with ge_p_good_to_bad and Bad->Good with ge_p_bad_to_good.
  // Marginal loss rate: pi_bad * ge_loss_bad + (1 - pi_bad) * ge_loss_good,
  // where pi_bad = p_gb / (p_gb + p_bg). Composes with the i.i.d.
  // drop_probability (either can kill a frame).
  bool gilbert_elliott = false;
  double ge_p_good_to_bad = 0.0;
  double ge_p_bad_to_good = 0.0;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;
};

class Medium {
 public:
  explicit Medium(sim::Simulator& s, std::uint64_t fault_seed = 0x5eed);
  virtual ~Medium() = default;
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  void Attach(Nic* nic) { taps_.push_back(nic); }

  // Called by a NIC at the instant its frame hits the wire.
  virtual void Transmit(Nic* from, net::MbufPtr frame) = 0;

  void set_faults(const Faults& f) { faults_ = f; }
  const Faults& faults() const { return faults_; }

  // Link carrier. While down, every frame handed to Transmit vanishes for
  // free — no wire time, no receiver CPU. Attached NICs are notified on
  // every edge so they can count and trace the transition.
  void set_carrier(bool up);
  bool carrier() const { return carrier_; }

  // Partition: taps whose ordinal bit is set in `group_a_mask` can no
  // longer exchange frames with taps whose bit is clear (ordinal = order of
  // Attach). Frames between severed taps vanish for free; frames within a
  // group still flow. Heal with ClearPartition().
  void SetPartition(std::uint64_t group_a_mask) {
    partitioned_ = true;
    partition_mask_ = group_a_mask;
  }
  void ClearPartition() { partitioned_ = false; }
  bool partitioned() const { return partitioned_; }

  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_carried() const { return frames_carried_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t frames_truncated() const { return frames_truncated_; }
  std::uint64_t frames_reordered() const { return frames_reordered_; }
  std::uint64_t frames_dropped_burst() const { return frames_dropped_burst_; }
  std::uint64_t frames_dropped_carrier() const { return frames_dropped_carrier_; }
  std::uint64_t frames_dropped_partition() const { return frames_dropped_partition_; }
  bool ge_in_bad_state() const { return ge_bad_; }

 protected:
  // Applies the fault model; returns the number of copies to deliver
  // (0 = dropped, 1 = normal, 2 = duplicated).
  int FaultCopies() {
    if (faults_.drop_probability > 0.0 && rng_.Bernoulli(faults_.drop_probability)) {
      ++frames_dropped_;
      return 0;
    }
    if (faults_.gilbert_elliott) {
      // Advance the chain once per frame, then roll against the state's
      // loss rate.
      if (ge_bad_) {
        if (faults_.ge_p_bad_to_good > 0.0 && rng_.Bernoulli(faults_.ge_p_bad_to_good)) {
          ge_bad_ = false;
        }
      } else {
        if (faults_.ge_p_good_to_bad > 0.0 && rng_.Bernoulli(faults_.ge_p_good_to_bad)) {
          ge_bad_ = true;
        }
      }
      const double loss = ge_bad_ ? faults_.ge_loss_bad : faults_.ge_loss_good;
      if (loss > 0.0 && rng_.Bernoulli(loss)) {
        ++frames_dropped_;
        ++frames_dropped_burst_;
        return 0;
      }
    }
    ++frames_carried_;
    if (faults_.duplicate_probability > 0.0 && rng_.Bernoulli(faults_.duplicate_probability)) {
      return 2;
    }
    return 1;
  }

  sim::Duration Jitter() {
    if (faults_.jitter_max.is_zero()) return sim::Duration::Zero();
    return rng_.UniformDuration(sim::Duration::Zero(), faults_.jitter_max);
  }

  // True when the frame dies before touching the wire: dead carrier. A free
  // drop, counted but costing nothing.
  bool CarrierDead() {
    if (carrier_) return false;
    ++frames_dropped_carrier_;
    return true;
  }

  // True when a partition separates the two taps (frames between severed
  // groups vanish). Unknown taps count as group B (bit clear).
  bool Severed(Nic* a, Nic* b) const {
    if (!partitioned_) return false;
    return InGroupA(a) != InGroupA(b);
  }
  bool InGroupA(Nic* nic) const {
    for (std::size_t i = 0; i < taps_.size() && i < 64; ++i) {
      if (taps_[i] == nic) return (partition_mask_ >> i) & 1;
    }
    return false;
  }

  // Reordering: at most one frame is held at a time; a held frame skips
  // delivery and is released just after the *next* transmitted frame's
  // arrival (so the two swap places on the wire). A frame held when the
  // simulation ends is never delivered — indistinguishable from tail loss,
  // which upper layers must tolerate anyway.
  bool MaybeHold(Nic* from, std::shared_ptr<net::Mbuf> frame) {
    if (faults_.reorder_probability <= 0.0 || held_frame_ != nullptr ||
        !rng_.Bernoulli(faults_.reorder_probability)) {
      return false;
    }
    ++frames_reordered_;
    held_from_ = from;
    held_frame_ = std::move(frame);
    return true;
  }

  // Returns {original sender, frame} of the held frame, clearing the hold.
  std::pair<Nic*, std::shared_ptr<net::Mbuf>> TakeHeld() {
    auto out = std::make_pair(held_from_, std::move(held_frame_));
    held_from_ = nullptr;
    held_frame_ = nullptr;
    return out;
  }

  // Possibly corrupts a frame in place (returns a clone with one byte
  // flipped). Checksums downstream are expected to catch this.
  net::MbufPtr MaybeCorrupt(net::MbufPtr frame) {
    if (faults_.corrupt_probability <= 0.0 ||
        !rng_.Bernoulli(faults_.corrupt_probability) || frame->PacketLength() == 0) {
      return frame;
    }
    ++frames_corrupted_;
    auto copy = frame->DeepCopy();
    const std::size_t pos = rng_.UniformU64(copy->PacketLength());
    std::byte b;
    copy->CopyOut(pos, {&b, 1});
    b ^= std::byte{0x40};
    copy->CopyIn(pos, {&b, 1});
    return copy;
  }

  // Possibly truncates a frame (a collision fragment / aborted DMA): only a
  // random non-empty prefix reaches the receivers. Every header parse
  // downstream must survive the short frame.
  net::MbufPtr MaybeTruncate(net::MbufPtr frame) {
    if (faults_.truncate_probability <= 0.0 ||
        !rng_.Bernoulli(faults_.truncate_probability) || frame->PacketLength() <= 1) {
      return frame;
    }
    ++frames_truncated_;
    auto copy = frame->DeepCopy();
    const std::size_t keep = 1 + rng_.UniformU64(copy->PacketLength() - 1);
    copy->TrimBack(copy->PacketLength() - keep);
    return copy;
  }

  sim::Simulator& sim_;
  sim::Random rng_;
  std::vector<Nic*> taps_;
  Faults faults_;
  bool carrier_ = true;
  bool partitioned_ = false;
  std::uint64_t partition_mask_ = 0;
  bool ge_bad_ = false;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_carried_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_truncated_ = 0;
  std::uint64_t frames_reordered_ = 0;
  std::uint64_t frames_dropped_burst_ = 0;
  std::uint64_t frames_dropped_carrier_ = 0;
  std::uint64_t frames_dropped_partition_ = 0;
  Nic* held_from_ = nullptr;
  std::shared_ptr<net::Mbuf> held_frame_;
};

// Full-duplex point-to-point link (the ATM virtual circuit through the
// ForeRunner switch, or the back-to-back T3 connection). Each direction
// serializes independently.
class PointToPointLink : public Medium {
 public:
  using Medium::Medium;
  void Transmit(Nic* from, net::MbufPtr frame) override;

 private:
  sim::TimePoint dir_free_[2];  // per-direction earliest next transmit
};

// Half-duplex shared segment ("a private Ethernet segment"): one frame on
// the wire at a time; every other tap receives each frame (NICs filter by
// destination MAC).
class EthernetSegment : public Medium {
 public:
  using Medium::Medium;
  void Transmit(Nic* from, net::MbufPtr frame) override;

 private:
  sim::TimePoint wire_free_;
};

}  // namespace drivers

#endif  // PLEXUS_DRIVERS_MEDIUM_H_
