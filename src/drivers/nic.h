// The simulated network interface controller.
//
// A Nic belongs to a Host and is attached to a Medium. Its behavior is
// parameterized by a DeviceProfile (PIO vs DMA, bandwidth, framing).
//
// Transmit path: protocol code — already running inside a CPU task on the
// host — calls Transmit. The NIC charges the driver's CPU cost to the
// current task and hands the frame to the medium at the task's completion
// instant (i.e. once the CPU has actually issued the I/O).
//
// Receive path: the medium delivers a frame at a simulated instant; the NIC
// refills a receive buffer from the host's bounded mbuf pool, enqueues it on
// a finite rx descriptor ring, and raises a device interrupt — an
// interrupt-priority task that charges interrupt + driver receive costs and
// invokes the receive callback, "the bottom of the Plexus protocol graph"
// (paper Section 3.3). A full ring or an exhausted pool drops the frame at
// the wire, consuming no CPU.
//
// Livelock avoidance: the architecture above is exactly the one that
// collapses under receive livelock — at saturation the CPU spends all its
// time in rx interrupts and no task-level work (the rest of the protocol
// graph in thread mode, applications) ever runs. When interrupt-level rx
// work exceeds DeviceProfile::poll_threshold of CPU time over a sliding
// window, the driver masks rx interrupts and drains the ring from a
// task-priority polling loop under a per-pass quota, re-enabling interrupts
// once the ring is empty. Mode transitions are counted and traced.
#ifndef PLEXUS_DRIVERS_NIC_H_
#define PLEXUS_DRIVERS_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "drivers/device_profile.h"
#include "drivers/medium.h"
#include "net/address.h"
#include "net/mbuf.h"
#include "net/mbuf_batch.h"
#include "sim/batch.h"
#include "sim/host.h"

namespace drivers {

class Nic {
 public:
  struct Stats {
    std::uint64_t tx_frames = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_frames = 0;  // accepted into the rx ring
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_filtered = 0;   // not addressed to us
    std::uint64_t rx_dropped = 0;    // ring-full + pool-exhausted drops
    std::uint64_t rx_ring_drops = 0;
    std::uint64_t rx_pool_drops = 0;
    std::uint64_t poll_entries = 0;  // interrupt -> polled transitions
    std::uint64_t poll_exits = 0;    // polled -> interrupt transitions
  };

  // The receive callback runs inside the interrupt-priority CPU task (or
  // the task-priority polling loop when the driver is in polled mode).
  using ReceiveCallback = std::function<void(net::MbufPtr)>;
  // Batched variant: one rx service pass drains the ring into an MbufBatch
  // (the NAPI shape) and hands the whole burst up in one callback. Only
  // used when set, batching is enabled, and more than one frame waits —
  // a burst of one takes the per-packet path, so lightly loaded runs are
  // byte-identical to the unbatched engine.
  using BatchReceiveCallback = std::function<void(net::MbufBatch)>;

  Nic(sim::Host& host, DeviceProfile profile, net::MacAddress mac);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  void AttachMedium(Medium* medium) {
    medium_ = medium;
    medium->Attach(this);
  }

  sim::Host& host() { return host_; }
  const DeviceProfile& profile() const { return profile_; }
  net::MacAddress mac() const { return mac_; }
  // A cold-restarted host may come back with a different adapter.
  void set_mac(net::MacAddress mac) { mac_ = mac; }
  int index() const { return index_; }
  void set_promiscuous(bool v) { promiscuous_ = v; }
  bool polling() const { return polling_; }
  std::size_t rx_ring_size() const { return rx_ring_.size(); }

  void SetReceiveCallback(ReceiveCallback cb) { rx_callback_ = std::move(cb); }
  void SetBatchReceiveCallback(BatchReceiveCallback cb) {
    batch_rx_callback_ = std::move(cb);
  }

  // Medium notification on a carrier edge: counted, traced, and mirrored in
  // a gauge so a metrics snapshot shows the link state. Counters are
  // created lazily — a run that never flaps a link keeps its metrics
  // snapshot unchanged.
  void OnCarrierChange(bool up);
  bool carrier() const { return carrier_; }

  // Stall: rx interrupts wedge (frames still land in the ring until it
  // overflows); Resume drains whatever accumulated. Models a wedged
  // interrupt line / driver stall without losing the ring contents.
  void SetStalled(bool stalled);
  bool stalled() const { return stalled_; }

  // Power: a crashed host's NIC is off — frames die at the wire for free,
  // nothing is counted against the (dead) host's pool.
  void set_powered(bool on) { powered_ = on; }
  bool powered() const { return powered_; }

  // Cold reset at restart: drops every frame still in the rx ring (their
  // buffers return to the pool), clears poll/stall state. Cumulative
  // counters survive — the device is the same silicon, only its queues die.
  void Reset();

  // Sends a fully framed packet. Must be called from within a CPU task on
  // this NIC's host (protocol output or an echo path in a driver test).
  void Transmit(net::MbufPtr frame);

  // Called by the medium when a frame arrives at this tap (no task context).
  void DeliverFromWire(net::MbufPtr frame, bool check_address);

  // Snapshot of the registry-backed counters ("<metrics_prefix>tx_frames"
  // etc. in host.metrics()).
  Stats stats() const {
    return Stats{tx_frames_.value(),    tx_bytes_.value(),     rx_frames_.value(),
                 rx_bytes_.value(),     rx_filtered_.value(),  rx_dropped_.value(),
                 rx_ring_drops_.value(), rx_pool_drops_.value(), poll_entries_.value(),
                 poll_exits_.value()};
  }
  void ResetStats();
  // "nic0.", "nic1.", ... — per-host ordinal, deterministic across runs
  // (unlike index(), which is process-global).
  const std::string& metrics_prefix() const { return metrics_prefix_; }

 private:
  // The interrupt-priority rx service routine: pops one frame off the ring,
  // charges driver costs, runs the callback, and updates the livelock
  // window. A no-op if the ring is empty or interrupts have been masked
  // (latched interrupts for frames the poll loop already consumed).
  void RxInterrupt();
  // Delivers the ring's head frame through the callback. The polled path
  // skips interrupt entry/exit — that is the entire point of the switch.
  void DeliverOne(bool polled);
  // Drains up to max_frames off the ring into one MbufBatch and hands it
  // to the batch callback: interrupt entry/exit and the upcall are paid
  // once for the whole burst, per-frame work (descriptor pop + driver rx
  // cost) stays per-frame.
  void DeliverBurst(bool polled, std::size_t max_frames);
  // Sliding-window accounting of interrupt-level rx work; trips the
  // interrupt->poll transition past the profile's threshold.
  void NoteRxWork(sim::Duration d);
  void EnterPollMode();
  void PollTask();

  sim::Host& host_;
  DeviceProfile profile_;
  net::MacAddress mac_;
  Medium* medium_ = nullptr;
  ReceiveCallback rx_callback_;
  BatchReceiveCallback batch_rx_callback_;
  std::string metrics_prefix_;
  sim::Counter& tx_frames_;
  sim::Counter& tx_bytes_;
  sim::Counter& rx_frames_;
  sim::Counter& rx_bytes_;
  sim::Counter& rx_filtered_;
  sim::Counter& rx_dropped_;
  sim::Counter& rx_ring_drops_;
  sim::Counter& rx_pool_drops_;
  sim::Counter& poll_entries_;
  sim::Counter& poll_exits_;
  sim::Gauge& rx_ring_gauge_;
  // Chaos-path instruments, resolved on first use so runs without
  // structural faults keep a byte-identical metrics snapshot.
  sim::Counter* carrier_downs_ = nullptr;
  sim::Gauge* carrier_gauge_ = nullptr;
  sim::Counter* stalls_ = nullptr;
  // Batch-path instruments, also lazy: an off-mode run keeps its metrics
  // snapshot byte-identical to the pre-batching engine.
  sim::Counter* rx_bursts_ = nullptr;
  sim::Counter* rx_burst_frames_ = nullptr;
  std::deque<net::MbufPtr> rx_ring_;
  bool polling_ = false;
  bool carrier_ = true;
  bool stalled_ = false;
  bool powered_ = true;
  sim::TimePoint window_start_;
  sim::Duration window_work_;
  bool promiscuous_ = false;
  int index_;

  inline static int next_index_ = 0;
};

}  // namespace drivers

#endif  // PLEXUS_DRIVERS_NIC_H_
