// The simulated network interface controller.
//
// A Nic belongs to a Host and is attached to a Medium. Its behavior is
// parameterized by a DeviceProfile (PIO vs DMA, bandwidth, framing).
//
// Transmit path: protocol code — already running inside a CPU task on the
// host — calls Transmit. The NIC charges the driver's CPU cost to the
// current task and hands the frame to the medium at the task's completion
// instant (i.e. once the CPU has actually issued the I/O).
//
// Receive path: the medium delivers a frame at a simulated instant; the NIC
// raises a device interrupt by submitting an interrupt-priority task that
// charges interrupt + driver receive costs and then invokes the receive
// callback — this is where "only privileged device driver code — the bottom
// of the Plexus protocol graph — runs directly in response to network
// device interrupts" (paper Section 3.3).
#ifndef PLEXUS_DRIVERS_NIC_H_
#define PLEXUS_DRIVERS_NIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "drivers/device_profile.h"
#include "drivers/medium.h"
#include "net/address.h"
#include "net/mbuf.h"
#include "sim/host.h"

namespace drivers {

class Nic {
 public:
  struct Stats {
    std::uint64_t tx_frames = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_frames = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_filtered = 0;  // not addressed to us
  };

  // The receive callback runs inside the interrupt-priority CPU task.
  using ReceiveCallback = std::function<void(net::MbufPtr)>;

  Nic(sim::Host& host, DeviceProfile profile, net::MacAddress mac);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  void AttachMedium(Medium* medium) {
    medium_ = medium;
    medium->Attach(this);
  }

  sim::Host& host() { return host_; }
  const DeviceProfile& profile() const { return profile_; }
  net::MacAddress mac() const { return mac_; }
  int index() const { return index_; }
  void set_promiscuous(bool v) { promiscuous_ = v; }

  void SetReceiveCallback(ReceiveCallback cb) { rx_callback_ = std::move(cb); }

  // Sends a fully framed packet. Must be called from within a CPU task on
  // this NIC's host (protocol output or an echo path in a driver test).
  void Transmit(net::MbufPtr frame);

  // Called by the medium when a frame arrives at this tap (no task context).
  void DeliverFromWire(net::MbufPtr frame, bool check_address);

  // Snapshot of the registry-backed counters ("<metrics_prefix>tx_frames"
  // etc. in host.metrics()).
  Stats stats() const {
    return Stats{tx_frames_.value(), tx_bytes_.value(), rx_frames_.value(),
                 rx_bytes_.value(), rx_filtered_.value()};
  }
  void ResetStats();
  // "nic0.", "nic1.", ... — per-host ordinal, deterministic across runs
  // (unlike index(), which is process-global).
  const std::string& metrics_prefix() const { return metrics_prefix_; }

 private:
  sim::Host& host_;
  DeviceProfile profile_;
  net::MacAddress mac_;
  Medium* medium_ = nullptr;
  ReceiveCallback rx_callback_;
  std::string metrics_prefix_;
  sim::Counter& tx_frames_;
  sim::Counter& tx_bytes_;
  sim::Counter& rx_frames_;
  sim::Counter& rx_bytes_;
  sim::Counter& rx_filtered_;
  bool promiscuous_ = false;
  int index_;

  inline static int next_index_ = 0;
};

}  // namespace drivers

#endif  // PLEXUS_DRIVERS_NIC_H_
