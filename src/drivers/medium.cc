#include "drivers/medium.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "drivers/nic.h"

namespace drivers {

Medium::Medium(sim::Simulator& s, std::uint64_t fault_seed) : sim_(s), rng_(fault_seed) {
  // PLEXUS_CHAOS_FLAP: inject one short mid-run carrier flap on every
  // medium. The window is narrow (2 us, ~7.777 ms in) so only frames that
  // hit the wire inside it vanish; everything above must absorb the loss
  // via its normal recovery paths. Used by check.sh to run the tier-1
  // suite with structural loss enabled.
  if (const char* flap = std::getenv("PLEXUS_CHAOS_FLAP");
      flap != nullptr && flap[0] != '\0' && flap[0] != '0') {
    const sim::TimePoint down = sim_.Now() + sim::Duration::Nanos(7'777'000);
    sim_.ScheduleAt(down, [this] { set_carrier(false); });
    sim_.ScheduleAt(down + sim::Duration::Nanos(2'000), [this] { set_carrier(true); });
  }
}

void Medium::set_carrier(bool up) {
  if (carrier_ == up) return;
  carrier_ = up;
  for (Nic* tap : taps_) tap->OnCarrierChange(up);
}

void PointToPointLink::Transmit(Nic* from, net::MbufPtr frame) {
  assert(taps_.size() == 2 && "point-to-point link needs exactly two taps");
  if (CarrierDead()) return;  // dead link: the frame vanishes for free
  const int dir = (from == taps_[0]) ? 0 : 1;
  Nic* to = taps_[dir == 0 ? 1 : 0];
  if (Severed(from, to)) {
    ++frames_dropped_partition_;
    return;
  }
  frame = MaybeTruncate(MaybeCorrupt(std::move(frame)));
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  if (MaybeHold(from, shared)) return;  // released after the next transmit

  const auto& profile = from->profile();
  const std::size_t len = shared->PacketLength();

  const sim::TimePoint start = std::max(sim_.Now(), dir_free_[dir]);
  const sim::Duration ser = profile.SerializationDelay(len);
  dir_free_[dir] = start + ser;

  const sim::TimePoint nominal_arrival = start + ser + profile.propagation;
  const int copies = FaultCopies();
  for (int i = 0; i < copies; ++i) {
    const sim::TimePoint arrival = nominal_arrival + Jitter();
    sim_.ScheduleAt(arrival, [to, shared] {
      to->DeliverFromWire(net::MbufPtr(shared->ShareClone()), /*check_address=*/false);
    });
  }

  if (auto [held_from, held] = TakeHeld(); held != nullptr) {
    ++frames_carried_;
    Nic* held_to = taps_[held_from == taps_[0] ? 1 : 0];
    sim_.ScheduleAt(nominal_arrival + sim::Duration::Nanos(1), [held_to, held] {
      held_to->DeliverFromWire(net::MbufPtr(held->ShareClone()), /*check_address=*/false);
    });
  }
}

void EthernetSegment::Transmit(Nic* from, net::MbufPtr frame) {
  if (CarrierDead()) return;  // dead segment: the frame vanishes for free
  frame = MaybeTruncate(MaybeCorrupt(std::move(frame)));
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  if (MaybeHold(from, shared)) return;  // released after the next transmit

  const auto& profile = from->profile();
  const std::size_t len = shared->PacketLength();

  // Half duplex: the segment carries one frame at a time. (Collisions are
  // modeled as serialization, which preserves throughput behavior without
  // simulating exponential backoff.)
  const sim::TimePoint start = std::max(sim_.Now(), wire_free_);
  const sim::Duration ser = profile.SerializationDelay(len);
  wire_free_ = start + ser;

  const sim::TimePoint nominal_arrival = start + ser + profile.propagation;
  const int copies = FaultCopies();
  for (int i = 0; i < copies; ++i) {
    for (Nic* tap : taps_) {
      if (tap == from) continue;
      if (Severed(from, tap)) {
        ++frames_dropped_partition_;
        continue;
      }
      const sim::TimePoint arrival = nominal_arrival + Jitter();
      sim_.ScheduleAt(arrival, [tap, shared] {
        tap->DeliverFromWire(net::MbufPtr(shared->ShareClone()), /*check_address=*/true);
      });
    }
  }

  if (auto [held_from, held] = TakeHeld(); held != nullptr) {
    ++frames_carried_;
    for (Nic* tap : taps_) {
      if (tap == held_from) continue;
      if (Severed(held_from, tap)) {
        ++frames_dropped_partition_;
        continue;
      }
      sim_.ScheduleAt(nominal_arrival + sim::Duration::Nanos(1), [tap, held] {
        tap->DeliverFromWire(net::MbufPtr(held->ShareClone()), /*check_address=*/true);
      });
    }
  }
}

}  // namespace drivers
