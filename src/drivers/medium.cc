#include "drivers/medium.h"

#include <algorithm>
#include <cassert>

#include "drivers/nic.h"

namespace drivers {

void PointToPointLink::Transmit(Nic* from, net::MbufPtr frame) {
  assert(taps_.size() == 2 && "point-to-point link needs exactly two taps");
  frame = MaybeTruncate(MaybeCorrupt(std::move(frame)));
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  if (MaybeHold(from, shared)) return;  // released after the next transmit

  const int dir = (from == taps_[0]) ? 0 : 1;
  Nic* to = taps_[dir == 0 ? 1 : 0];
  const auto& profile = from->profile();
  const std::size_t len = shared->PacketLength();

  const sim::TimePoint start = std::max(sim_.Now(), dir_free_[dir]);
  const sim::Duration ser = profile.SerializationDelay(len);
  dir_free_[dir] = start + ser;

  const sim::TimePoint nominal_arrival = start + ser + profile.propagation;
  const int copies = FaultCopies();
  for (int i = 0; i < copies; ++i) {
    const sim::TimePoint arrival = nominal_arrival + Jitter();
    sim_.ScheduleAt(arrival, [to, shared] {
      to->DeliverFromWire(net::MbufPtr(shared->ShareClone()), /*check_address=*/false);
    });
  }

  if (auto [held_from, held] = TakeHeld(); held != nullptr) {
    ++frames_carried_;
    Nic* held_to = taps_[held_from == taps_[0] ? 1 : 0];
    sim_.ScheduleAt(nominal_arrival + sim::Duration::Nanos(1), [held_to, held] {
      held_to->DeliverFromWire(net::MbufPtr(held->ShareClone()), /*check_address=*/false);
    });
  }
}

void EthernetSegment::Transmit(Nic* from, net::MbufPtr frame) {
  frame = MaybeTruncate(MaybeCorrupt(std::move(frame)));
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  if (MaybeHold(from, shared)) return;  // released after the next transmit

  const auto& profile = from->profile();
  const std::size_t len = shared->PacketLength();

  // Half duplex: the segment carries one frame at a time. (Collisions are
  // modeled as serialization, which preserves throughput behavior without
  // simulating exponential backoff.)
  const sim::TimePoint start = std::max(sim_.Now(), wire_free_);
  const sim::Duration ser = profile.SerializationDelay(len);
  wire_free_ = start + ser;

  const sim::TimePoint nominal_arrival = start + ser + profile.propagation;
  const int copies = FaultCopies();
  for (int i = 0; i < copies; ++i) {
    for (Nic* tap : taps_) {
      if (tap == from) continue;
      const sim::TimePoint arrival = nominal_arrival + Jitter();
      sim_.ScheduleAt(arrival, [tap, shared] {
        tap->DeliverFromWire(net::MbufPtr(shared->ShareClone()), /*check_address=*/true);
      });
    }
  }

  if (auto [held_from, held] = TakeHeld(); held != nullptr) {
    ++frames_carried_;
    for (Nic* tap : taps_) {
      if (tap == held_from) continue;
      sim_.ScheduleAt(nominal_arrival + sim::Duration::Nanos(1), [tap, held] {
        tap->DeliverFromWire(net::MbufPtr(held->ShareClone()), /*check_address=*/true);
      });
    }
  }
}

}  // namespace drivers
