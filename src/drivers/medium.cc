#include "drivers/medium.h"

#include <algorithm>
#include <cassert>

#include "drivers/nic.h"

namespace drivers {

void PointToPointLink::Transmit(Nic* from, net::MbufPtr frame) {
  assert(taps_.size() == 2 && "point-to-point link needs exactly two taps");
  frame = MaybeCorrupt(std::move(frame));
  const int dir = (from == taps_[0]) ? 0 : 1;
  Nic* to = taps_[dir == 0 ? 1 : 0];
  const auto& profile = from->profile();
  const std::size_t len = frame->PacketLength();

  const sim::TimePoint start = std::max(sim_.Now(), dir_free_[dir]);
  const sim::Duration ser = profile.SerializationDelay(len);
  dir_free_[dir] = start + ser;

  const int copies = FaultCopies();
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  for (int i = 0; i < copies; ++i) {
    const sim::TimePoint arrival = start + ser + profile.propagation + Jitter();
    sim_.ScheduleAt(arrival, [to, shared] {
      to->DeliverFromWire(net::MbufPtr(shared->ShareClone()), /*check_address=*/false);
    });
  }
}

void EthernetSegment::Transmit(Nic* from, net::MbufPtr frame) {
  frame = MaybeCorrupt(std::move(frame));
  const auto& profile = from->profile();
  const std::size_t len = frame->PacketLength();

  // Half duplex: the segment carries one frame at a time. (Collisions are
  // modeled as serialization, which preserves throughput behavior without
  // simulating exponential backoff.)
  const sim::TimePoint start = std::max(sim_.Now(), wire_free_);
  const sim::Duration ser = profile.SerializationDelay(len);
  wire_free_ = start + ser;

  const int copies = FaultCopies();
  auto shared = std::shared_ptr<net::Mbuf>(frame.release());
  for (int i = 0; i < copies; ++i) {
    for (Nic* tap : taps_) {
      if (tap == from) continue;
      const sim::TimePoint arrival = start + ser + profile.propagation + Jitter();
      sim_.ScheduleAt(arrival, [tap, shared] {
        tap->DeliverFromWire(net::MbufPtr(shared->ShareClone()), /*check_address=*/true);
      });
    }
  }
}

}  // namespace drivers
