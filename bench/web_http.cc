// Extension bench (not a paper figure): HTTP request latency and small-file
// throughput, Plexus in-kernel server vs the baseline user-level server —
// the workload of the paper's closing web-demo sentence, quantified.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "drivers/medium.h"
#include "os/socket_host.h"
#include "os/sockets.h"
#include "proto/http.h"

namespace {

// Time from connect() to full response received, for `body_bytes` pages.
double PlexusHttpLatencyUs(std::size_t body_bytes) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto costs = sim::CostModel::Default1996();
  const auto profile = drivers::DeviceProfile::Ethernet10();
  core::PlexusHost server(sim, "server", costs, profile,
                          {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost client(sim, "client", costs, profile,
                          {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  server.AttachTo(segment);
  client.AttachTo(segment);
  server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  client.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  server.arp().AddStatic(net::Ipv4Address(10, 0, 0, 2), net::MacAddress::FromId(2));
  client.arp().AddStatic(net::Ipv4Address(10, 0, 0, 1), net::MacAddress::FromId(1));

  const std::string body(body_bytes, 'w');
  std::vector<std::unique_ptr<proto::HttpServerConnection>> conns;
  server.tcp().Listen(80, [&](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
    // In-kernel page generation: the parse cost is charged, no copies.
    conns.push_back(std::make_unique<proto::HttpServerConnection>(
        *ep, [&](const std::string&) {
          server.host().Charge(server.host().costs().http_parse);
          return std::optional(body);
        }));
  });

  double done_at = -1;
  sim::TimePoint start;
  std::shared_ptr<core::PlexusTcpEndpoint> conn;
  std::unique_ptr<proto::HttpClient> http;
  client.Run([&] {
    start = sim.Now();
    conn = client.tcp().Connect(net::Ipv4Address(10, 0, 0, 1), 80);
    http = std::make_unique<proto::HttpClient>(
        *conn, [&](const proto::HttpClient::Response& r) {
          if (r.status == 200) done_at = (sim.Now() - start).us();
        });
    conn->SetOnEstablished([&] { http->Get("/page"); });
  });
  sim.RunFor(sim::Duration::Seconds(60));
  return done_at;
}

double DuHttpLatencyUs(std::size_t body_bytes) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto costs = sim::CostModel::Default1996();
  const auto profile = drivers::DeviceProfile::Ethernet10();
  os::SocketHost server(sim, "server", costs, profile,
                        {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  os::SocketHost client(sim, "client", costs, profile,
                        {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  server.AttachTo(segment);
  client.AttachTo(segment);
  server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  client.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  server.arp().AddStatic(net::Ipv4Address(10, 0, 0, 2), net::MacAddress::FromId(2));
  client.arp().AddStatic(net::Ipv4Address(10, 0, 0, 1), net::MacAddress::FromId(1));

  const std::string body(body_bytes, 'w');
  std::vector<std::unique_ptr<proto::HttpServerConnection>> conns;
  os::TcpListener listener(server, 80, [&](std::shared_ptr<os::TcpSocket> s) {
    conns.push_back(std::make_unique<proto::HttpServerConnection>(
        *s, [&](const std::string&) {
          server.host().Charge(server.host().costs().http_parse);
          return std::optional(body);
        }));
  });

  double done_at = -1;
  const sim::TimePoint start = sim.Now();
  auto conn = os::TcpSocket::Connect(client, net::Ipv4Address(10, 0, 0, 1), 80);
  proto::HttpClient http(*conn, [&](const proto::HttpClient::Response& r) {
    if (r.status == 200) done_at = (sim.Now() - start).us();
  });
  conn->SetOnEstablished([&] { http.Get("/page"); });
  sim.RunFor(sim::Duration::Seconds(60));
  return done_at;
}

}  // namespace

int main() {
  std::printf("Extension: HTTP GET latency (connect -> full response), Ethernet\n");
  std::printf("(the paper's closing demo: \"the protocol stack as it services HTTP\n"
              " requests\" — quantifying the in-kernel server against the baseline)\n\n");
  std::printf("%12s %16s %16s %10s\n", "page bytes", "Plexus (us)", "DU (us)", "DU/Plexus");
  bool holds = true;
  for (std::size_t bytes : {256ul, 2048ul, 16384ul, 65536ul}) {
    const double plexus = PlexusHttpLatencyUs(bytes);
    const double du = DuHttpLatencyUs(bytes);
    std::printf("%12zu %16.1f %16.1f %10.2f\n", bytes, plexus, du, du / plexus);
    holds = holds && plexus > 0 && du > plexus;
  }
  std::printf("\n  shape: in-kernel HTTP service faster at every size: %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return 0;
}
