// Figure 5: "UDP Round trip network send/receive time for small (8 byte)
// packets when using different networking hardware with Plexus and DIGITAL
// UNIX", plus the faster-driver results quoted in Section 4.1 and the
// driver-to-driver minimum shown in the figure.
//
// Flags:
//   --json <path>   write every device x system cell (paper-expected vs
//                   measured, per-host metrics, CPU breakdown) as
//                   plexus-bench-v1 JSON
//   --trace <path>  write the Chrome trace of the traced Ethernet
//                   Plexus-interrupt run (load in chrome://tracing)
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using drivers::DeviceProfile;
  const auto costs = sim::CostModel::Default1996();
  const auto fast_costs = sim::CostModel::FastDriver1996();
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  const std::string trace_path = bench::ArgAfter(argc, argv, "--trace");
  bench::JsonReporter reporter;

  std::printf("Figure 5: UDP round-trip latency, 8-byte packets (microseconds)\n");
  std::printf("Paper: Plexus(interrupt) < 600us Ethernet, ~350us ATM, ~300us T3;\n");
  std::printf("DIGITAL UNIX substantially slower; thread mode above interrupt mode.\n");

  auto record = [&](const std::string& device, const std::string& system, double measured,
                    const char* paper, bench::RunObservability* obs) {
    bench::BenchRecord r;
    r.experiment = "fig5_udp_rtt";
    r.device = device;
    r.system = system;
    r.metric = "rtt";
    r.unit = "us";
    r.measured = measured;
    r.paper_expected = paper;
    if (obs != nullptr) {
      r.metrics_json = obs->metrics_json;
      r.charge_breakdown_json = obs->charge_breakdown_json;
    }
    reporter.Add(std::move(r));
  };

  struct Device {
    DeviceProfile profile;
    const char* paper_plexus;
  };
  const Device devices[] = {
      {DeviceProfile::Ethernet10(), "<600"},
      {DeviceProfile::ForeAtm155(), "~350"},
      {DeviceProfile::DecT3(), "~300"},
  };

  for (const auto& dev : devices) {
    bench::PrintHeader(dev.profile.name);
    // The Plexus interrupt run is traced: same virtual-time result, plus the
    // per-layer CPU breakdown the paper's Section 4 discussion argues from.
    bench::RunObservability plexus_obs;
    plexus_obs.enable_tracing = true;
    bench::RunObservability thr_obs, du_obs;
    const double plexus_int = bench::PlexusUdpRttUs(dev.profile, costs,
                                                    core::HandlerMode::kInterrupt,
                                                    /*payload=*/8, /*pings=*/16, &plexus_obs);
    const double plexus_thr = bench::PlexusUdpRttUs(dev.profile, costs,
                                                    core::HandlerMode::kThread,
                                                    /*payload=*/8, /*pings=*/16, &thr_obs);
    const double du = bench::OsUdpRttUs(dev.profile, costs, /*payload=*/8, /*pings=*/16, &du_obs);
    const double driver = bench::DriverUdpRttUs(dev.profile, costs);
    bench::PrintRow("Plexus (interrupt handler)", plexus_int, "us", dev.paper_plexus);
    bench::PrintRow("Plexus (thread per event raise)", plexus_thr, "us", "> interrupt");
    bench::PrintRow("DIGITAL UNIX (user-level sockets)", du, "us", "substantially slower");
    bench::PrintRow("driver-to-driver minimum", driver, "us", "figure baseline");
    std::printf("  shape: driver <= plexus-int < plexus-thread < DU : %s\n",
                (driver <= plexus_int && plexus_int < plexus_thr && plexus_thr < du) ? "HOLDS"
                                                                                     : "VIOLATED");
    record(dev.profile.name, "plexus-interrupt", plexus_int, dev.paper_plexus, &plexus_obs);
    record(dev.profile.name, "plexus-thread", plexus_thr, "> interrupt", &thr_obs);
    record(dev.profile.name, "digital-unix", du, "substantially slower", &du_obs);
    record(dev.profile.name, "driver", driver, "figure baseline", nullptr);
    if (!trace_path.empty() && &dev == &devices[0]) {
      // One representative Chrome trace: NIC -> dispatch -> guard -> handler
      // nesting over the Ethernet ping-pong.
      std::FILE* f = std::fopen(trace_path.c_str(), "w");
      if (f != nullptr) {
        std::fputs(plexus_obs.chrome_trace_json.c_str(), f);
        std::fclose(f);
        std::printf("  wrote Chrome trace: %s\n", trace_path.c_str());
      }
    }
  }

  bench::PrintHeader("Section 4.1: faster device driver (SPIN)");
  const double fast_eth = bench::PlexusUdpRttUs(DeviceProfile::Ethernet10FastDriver(),
                                                fast_costs, core::HandlerMode::kInterrupt);
  const double fast_atm = bench::PlexusUdpRttUs(DeviceProfile::ForeAtm155FastDriver(),
                                                fast_costs, core::HandlerMode::kInterrupt);
  bench::PrintRow("Plexus fast driver, Ethernet", fast_eth, "us", "337");
  bench::PrintRow("Plexus fast driver, ATM", fast_atm, "us", "241");
  record(DeviceProfile::Ethernet10FastDriver().name, "plexus-interrupt-fast", fast_eth, "337",
         nullptr);
  record(DeviceProfile::ForeAtm155FastDriver().name, "plexus-interrupt-fast", fast_atm, "241",
         nullptr);

  if (!json_path.empty()) {
    if (!reporter.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu records: %s\n", reporter.size(), json_path.c_str());
  }
  return 0;
}
