// Figure 5: "UDP Round trip network send/receive time for small (8 byte)
// packets when using different networking hardware with Plexus and DIGITAL
// UNIX", plus the faster-driver results quoted in Section 4.1 and the
// driver-to-driver minimum shown in the figure.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using drivers::DeviceProfile;
  const auto costs = sim::CostModel::Default1996();
  const auto fast_costs = sim::CostModel::FastDriver1996();

  std::printf("Figure 5: UDP round-trip latency, 8-byte packets (microseconds)\n");
  std::printf("Paper: Plexus(interrupt) < 600us Ethernet, ~350us ATM, ~300us T3;\n");
  std::printf("DIGITAL UNIX substantially slower; thread mode above interrupt mode.\n");

  struct Device {
    DeviceProfile profile;
    const char* paper_plexus;
  };
  const Device devices[] = {
      {DeviceProfile::Ethernet10(), "<600"},
      {DeviceProfile::ForeAtm155(), "~350"},
      {DeviceProfile::DecT3(), "~300"},
  };

  for (const auto& dev : devices) {
    bench::PrintHeader(dev.profile.name);
    const double plexus_int =
        bench::PlexusUdpRttUs(dev.profile, costs, core::HandlerMode::kInterrupt);
    const double plexus_thr =
        bench::PlexusUdpRttUs(dev.profile, costs, core::HandlerMode::kThread);
    const double du = bench::OsUdpRttUs(dev.profile, costs);
    const double driver = bench::DriverUdpRttUs(dev.profile, costs);
    bench::PrintRow("Plexus (interrupt handler)", plexus_int, "us", dev.paper_plexus);
    bench::PrintRow("Plexus (thread per event raise)", plexus_thr, "us", "> interrupt");
    bench::PrintRow("DIGITAL UNIX (user-level sockets)", du, "us", "substantially slower");
    bench::PrintRow("driver-to-driver minimum", driver, "us", "figure baseline");
    std::printf("  shape: driver <= plexus-int < plexus-thread < DU : %s\n",
                (driver <= plexus_int && plexus_int < plexus_thr && plexus_thr < du) ? "HOLDS"
                                                                                     : "VIOLATED");
  }

  bench::PrintHeader("Section 4.1: faster device driver (SPIN)");
  const double fast_eth = bench::PlexusUdpRttUs(DeviceProfile::Ethernet10FastDriver(),
                                                fast_costs, core::HandlerMode::kInterrupt);
  const double fast_atm = bench::PlexusUdpRttUs(DeviceProfile::ForeAtm155FastDriver(),
                                                fast_costs, core::HandlerMode::kInterrupt);
  bench::PrintRow("Plexus fast driver, Ethernet", fast_eth, "us", "337");
  bench::PrintRow("Plexus fast driver, ATM", fast_atm, "us", "241");
  return 0;
}
