// Ablation: how the Plexus latency advantage depends on the cost model.
//
// DESIGN.md calls out that the paper's win comes from structural costs
// (traps, copies, scheduling) that were large relative to wire time in
// 1996. This bench re-runs the Figure 5 Ethernet experiment under three
// cost models — the calibrated 1996 one, the fast-driver variant, and a
// hypothetical modern machine — showing the advantage shrinking as the
// boundary costs fall (the eBPF/XDP-era perspective).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using drivers::DeviceProfile;

  std::printf("Ablation: Figure 5 (Ethernet UDP RTT) under different cost models\n");
  std::printf("%-24s %14s %14s %12s\n", "cost model", "Plexus (us)", "DU (us)", "DU/Plexus");

  struct Case {
    const char* name;
    sim::CostModel costs;
    DeviceProfile profile;
  };
  const Case cases[] = {
      {"1996 (calibrated)", sim::CostModel::Default1996(), DeviceProfile::Ethernet10()},
      {"1996 + fast driver", sim::CostModel::FastDriver1996(),
       DeviceProfile::Ethernet10FastDriver()},
      {"modern hypothetical", sim::CostModel::ModernHypothetical(),
       DeviceProfile::Ethernet10FastDriver()},
  };

  double first_ratio = 0, last_ratio = 0;
  for (const auto& c : cases) {
    const double plexus =
        bench::PlexusUdpRttUs(c.profile, c.costs, core::HandlerMode::kInterrupt);
    const double du = bench::OsUdpRttUs(c.profile, c.costs);
    const double ratio = du / plexus;
    std::printf("%-24s %14.1f %14.1f %12.2f\n", c.name, plexus, du, ratio);
    if (first_ratio == 0) first_ratio = ratio;
    last_ratio = ratio;
  }
  std::printf("\nThe OS-structure advantage shrinks as boundary costs fall: %s\n",
              last_ratio < first_ratio ? "HOLDS" : "VIOLATED");

  // Individual knobs: which boundary cost matters most for the 1996 gap?
  std::printf("\nKnock-out analysis (set one DU cost to zero, 1996 model, Ethernet):\n");
  struct Knob {
    const char* name;
    void (*apply)(sim::CostModel&);
  };
  const Knob knobs[] = {
      {"context_switch = 0", [](sim::CostModel& m) { m.context_switch = sim::Duration::Zero(); }},
      {"sched_wakeup = 0", [](sim::CostModel& m) { m.sched_wakeup = sim::Duration::Zero(); }},
      {"syscalls = 0",
       [](sim::CostModel& m) {
         m.syscall_entry = sim::Duration::Zero();
         m.syscall_exit = sim::Duration::Zero();
       }},
      {"copies = 0",
       [](sim::CostModel& m) {
         m.copy_per_byte = sim::Duration::Zero();
         m.copy_fixed = sim::Duration::Zero();
       }},
      {"socket layer = 0",
       [](sim::CostModel& m) {
         m.socket_layer = sim::Duration::Zero();
         m.socket_demux = sim::Duration::Zero();
       }},
  };
  const double baseline_du =
      bench::OsUdpRttUs(DeviceProfile::Ethernet10(), sim::CostModel::Default1996());
  std::printf("  %-26s %10.1f us (baseline)\n", "all costs on", baseline_du);
  for (const auto& k : knobs) {
    sim::CostModel m = sim::CostModel::Default1996();
    k.apply(m);
    const double du = bench::OsUdpRttUs(DeviceProfile::Ethernet10(), m);
    std::printf("  %-26s %10.1f us (saves %.1f us/RTT)\n", k.name, du, baseline_du - du);
  }
  return 0;
}
