// Microbenchmark for the Section 3.2 claim: VIEW gives safe, zero-copy
// access to packet headers. Compares net::View against (a) a full memcpy of
// the packet into a staging buffer before parsing (the "safe alternative,
// copying" the paper rejects) and (b) field-by-field byte extraction.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "net/headers.h"
#include "net/mbuf.h"
#include "net/view.h"

namespace {

std::vector<std::byte> MakeFrame(std::size_t payload) {
  std::vector<std::byte> frame(sizeof(net::EthernetHeader) + sizeof(net::Ipv4Header) + payload);
  net::EthernetHeader eth;
  eth.type = net::ethertype::kIpv4;
  net::Ipv4Header ip;
  ip.protocol = net::ipproto::kUdp;
  ip.src = net::Ipv4Address(10, 0, 0, 1);
  ip.dst = net::Ipv4Address(10, 0, 0, 2);
  std::memcpy(frame.data(), &eth, sizeof(eth));
  std::memcpy(frame.data() + sizeof(eth), &ip, sizeof(ip));
  return frame;
}

std::uint32_t g_sink;

void ViewHeaders(benchmark::State& state) {
  auto frame = MakeFrame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto eth = net::View<net::EthernetHeader>(frame);
    auto ip = net::View<net::Ipv4Header>(frame, sizeof(net::EthernetHeader));
    g_sink = eth.type.value() + ip.src.value();
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(ViewHeaders)->Arg(64)->Arg(1500);

void CopyWholePacketThenParse(benchmark::State& state) {
  auto frame = MakeFrame(static_cast<std::size_t>(state.range(0)));
  std::vector<std::byte> staging(frame.size());
  for (auto _ : state) {
    std::memcpy(staging.data(), frame.data(), frame.size());  // the rejected copy
    auto eth = net::View<net::EthernetHeader>(staging);
    auto ip = net::View<net::Ipv4Header>(staging, sizeof(net::EthernetHeader));
    g_sink = eth.type.value() + ip.src.value();
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(CopyWholePacketThenParse)->Arg(64)->Arg(1500);

void ByteByByteExtraction(benchmark::State& state) {
  auto frame = MakeFrame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto* p = frame.data();
    const std::uint16_t type = (static_cast<std::uint8_t>(p[12]) << 8) |
                               static_cast<std::uint8_t>(p[13]);
    const std::uint32_t src = (static_cast<std::uint8_t>(p[26]) << 24) |
                              (static_cast<std::uint8_t>(p[27]) << 16) |
                              (static_cast<std::uint8_t>(p[28]) << 8) |
                              static_cast<std::uint8_t>(p[29]);
    g_sink = type + src;
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(ByteByByteExtraction)->Arg(64)->Arg(1500);

void ViewPacketAcrossMbufChain(benchmark::State& state) {
  auto flat = MakeFrame(1000);
  // Split the frame across two mbuf segments mid-IP-header to exercise the
  // slow path.
  net::MbufPtr m = net::Mbuf::FromBytes({flat.data(), 20});
  m->AppendChain(net::Mbuf::FromBytes({flat.data() + 20, flat.size() - 20}, 0));
  for (auto _ : state) {
    auto ip = net::ViewPacket<net::Ipv4Header>(*m, sizeof(net::EthernetHeader));
    g_sink = ip.src.value();
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(ViewPacketAcrossMbufChain);

}  // namespace

BENCHMARK_MAIN();
