// Section 4.2 (throughput): "for Ethernet, we saw 8.9 Mb/sec, and for the
// Fore ATM card, we saw 27.9 Mb/sec with DIGITAL UNIX and 33 Mb/sec with
// Plexus", against a driver-to-driver ceiling of ~53 Mb/s on ATM ("we have
// been unable to achieve greater than 53Mb/sec when transferring data
// reliably between two device drivers"). The paper could not measure T3
// TCP (DMA bug); we report it as an extension.
//
// Flags:
//   --json <path>  write every device x system cell (paper-expected vs
//                  measured, per-host metrics incl. tcp.* retransmit and
//                  cwnd histograms) as plexus-bench-v1 JSON
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using drivers::DeviceProfile;
  const auto costs = sim::CostModel::Default1996();
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  bench::JsonReporter reporter;

  auto record = [&](const std::string& device, const std::string& system, double measured,
                    const char* paper, bench::RunObservability* obs) {
    bench::BenchRecord r;
    r.experiment = "tab1_tcp_throughput";
    r.device = device;
    r.system = system;
    r.metric = "throughput";
    r.unit = "Mb/s";
    r.measured = measured;
    r.paper_expected = paper;
    if (obs != nullptr) {
      r.metrics_json = obs->metrics_json;
      r.charge_breakdown_json = obs->charge_breakdown_json;
    }
    reporter.Add(std::move(r));
  };

  std::printf("Section 4.2: TCP throughput (Mb/s)\n");

  {
    bench::PrintHeader("Ethernet (10 Mb/s)");
    bench::RunObservability pobs, dobs;
    const double plexus =
        bench::PlexusTcpThroughputMbps(DeviceProfile::Ethernet10(), costs,
                                       /*transfer_bytes=*/4 * 1024 * 1024, &pobs);
    const double du = bench::OsTcpThroughputMbps(DeviceProfile::Ethernet10(), costs,
                                                 /*transfer_bytes=*/4 * 1024 * 1024, &dobs);
    const double drv = bench::DriverThroughputMbps(DeviceProfile::Ethernet10(), costs);
    bench::PrintRow("Plexus", plexus, "Mb/s", "8.9");
    bench::PrintRow("DIGITAL UNIX", du, "Mb/s", "8.9");
    bench::PrintRow("driver-to-driver", drv, "Mb/s", "(wire-limited)");
    std::printf("  shape: both systems wire-limited and nearly identical: %s\n",
                (plexus > 7.0 && du > 7.0 && plexus / du < 1.2 && du / plexus < 1.2)
                    ? "HOLDS"
                    : "VIOLATED");
    record(DeviceProfile::Ethernet10().name, "plexus", plexus, "8.9", &pobs);
    record(DeviceProfile::Ethernet10().name, "digital-unix", du, "8.9", &dobs);
    record(DeviceProfile::Ethernet10().name, "driver", drv, "(wire-limited)", nullptr);
  }
  {
    bench::PrintHeader("Fore ATM (155 Mb/s line, PIO-limited)");
    bench::RunObservability pobs, dobs;
    const double drv = bench::DriverThroughputMbps(DeviceProfile::ForeAtm155(), costs);
    const double plexus =
        bench::PlexusTcpThroughputMbps(DeviceProfile::ForeAtm155(), costs,
                                       /*transfer_bytes=*/4 * 1024 * 1024, &pobs);
    const double du = bench::OsTcpThroughputMbps(DeviceProfile::ForeAtm155(), costs,
                                                 /*transfer_bytes=*/4 * 1024 * 1024, &dobs);
    bench::PrintRow("driver-to-driver ceiling", drv, "Mb/s", "53");
    bench::PrintRow("Plexus", plexus, "Mb/s", "33");
    bench::PrintRow("DIGITAL UNIX", du, "Mb/s", "27.9");
    std::printf("  shape: DU < Plexus < driver ceiling: %s\n",
                (du < plexus && plexus < drv) ? "HOLDS" : "VIOLATED");
    record(DeviceProfile::ForeAtm155().name, "driver", drv, "53", nullptr);
    record(DeviceProfile::ForeAtm155().name, "plexus", plexus, "33", &pobs);
    record(DeviceProfile::ForeAtm155().name, "digital-unix", du, "27.9", &dobs);
  }
  {
    bench::PrintHeader("DEC T3 (45 Mb/s, DMA) — not measured in the paper");
    bench::RunObservability pobs, dobs;
    const double plexus =
        bench::PlexusTcpThroughputMbps(DeviceProfile::DecT3(), costs,
                                       /*transfer_bytes=*/4 * 1024 * 1024, &pobs);
    const double du = bench::OsTcpThroughputMbps(DeviceProfile::DecT3(), costs,
                                                 /*transfer_bytes=*/4 * 1024 * 1024, &dobs);
    const double drv = bench::DriverThroughputMbps(DeviceProfile::DecT3(), costs);
    bench::PrintRow("Plexus", plexus, "Mb/s", "n/a (DMA bug)");
    bench::PrintRow("DIGITAL UNIX", du, "Mb/s", "n/a");
    bench::PrintRow("driver-to-driver", drv, "Mb/s", "~45 wire");
    record(DeviceProfile::DecT3().name, "plexus", plexus, "n/a (DMA bug)", &pobs);
    record(DeviceProfile::DecT3().name, "digital-unix", du, "n/a", &dobs);
    record(DeviceProfile::DecT3().name, "driver", drv, "~45 wire", nullptr);
  }

  if (!json_path.empty()) {
    if (!reporter.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu records: %s\n", reporter.size(), json_path.c_str());
  }
  return 0;
}
