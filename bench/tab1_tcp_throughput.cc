// Section 4.2 (throughput): "for Ethernet, we saw 8.9 Mb/sec, and for the
// Fore ATM card, we saw 27.9 Mb/sec with DIGITAL UNIX and 33 Mb/sec with
// Plexus", against a driver-to-driver ceiling of ~53 Mb/s on ATM ("we have
// been unable to achieve greater than 53Mb/sec when transferring data
// reliably between two device drivers"). The paper could not measure T3
// TCP (DMA bug); we report it as an extension.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using drivers::DeviceProfile;
  const auto costs = sim::CostModel::Default1996();

  std::printf("Section 4.2: TCP throughput (Mb/s)\n");

  {
    bench::PrintHeader("Ethernet (10 Mb/s)");
    const double plexus = bench::PlexusTcpThroughputMbps(DeviceProfile::Ethernet10(), costs);
    const double du = bench::OsTcpThroughputMbps(DeviceProfile::Ethernet10(), costs);
    const double drv = bench::DriverThroughputMbps(DeviceProfile::Ethernet10(), costs);
    bench::PrintRow("Plexus", plexus, "Mb/s", "8.9");
    bench::PrintRow("DIGITAL UNIX", du, "Mb/s", "8.9");
    bench::PrintRow("driver-to-driver", drv, "Mb/s", "(wire-limited)");
    std::printf("  shape: both systems wire-limited and nearly identical: %s\n",
                (plexus > 7.0 && du > 7.0 && plexus / du < 1.2 && du / plexus < 1.2)
                    ? "HOLDS"
                    : "VIOLATED");
  }
  {
    bench::PrintHeader("Fore ATM (155 Mb/s line, PIO-limited)");
    const double drv = bench::DriverThroughputMbps(DeviceProfile::ForeAtm155(), costs);
    const double plexus = bench::PlexusTcpThroughputMbps(DeviceProfile::ForeAtm155(), costs);
    const double du = bench::OsTcpThroughputMbps(DeviceProfile::ForeAtm155(), costs);
    bench::PrintRow("driver-to-driver ceiling", drv, "Mb/s", "53");
    bench::PrintRow("Plexus", plexus, "Mb/s", "33");
    bench::PrintRow("DIGITAL UNIX", du, "Mb/s", "27.9");
    std::printf("  shape: DU < Plexus < driver ceiling: %s\n",
                (du < plexus && plexus < drv) ? "HOLDS" : "VIOLATED");
  }
  {
    bench::PrintHeader("DEC T3 (45 Mb/s, DMA) — not measured in the paper");
    const double plexus = bench::PlexusTcpThroughputMbps(DeviceProfile::DecT3(), costs);
    const double du = bench::OsTcpThroughputMbps(DeviceProfile::DecT3(), costs);
    const double drv = bench::DriverThroughputMbps(DeviceProfile::DecT3(), costs);
    bench::PrintRow("Plexus", plexus, "Mb/s", "n/a (DMA bug)");
    bench::PrintRow("DIGITAL UNIX", du, "Mb/s", "n/a");
    bench::PrintRow("driver-to-driver", drv, "Mb/s", "~45 wire");
  }
  return 0;
}
