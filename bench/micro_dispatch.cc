// Microbenchmark for the Section 2 claim: "the overhead of invoking each
// handler is roughly one procedure call."
//
// Measures real wall time of Event::Raise against a direct virtual and
// direct std::function call, plus the scaling of guard chains (the demux
// cost as more endpoints install filters on one event).
#include <benchmark/benchmark.h>

#include <functional>

#include "spin/dispatcher.h"
#include "spin/event.h"

namespace {

int g_sink = 0;

void DirectCall(benchmark::State& state) {
  std::function<void(int)> fn = [](int v) { g_sink += v; };
  for (auto _ : state) {
    fn(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(DirectCall);

void EventRaiseNoGuard(benchmark::State& state) {
  spin::Event<int> ev("Bench.Event");
  (void)ev.Install([](int v) { g_sink += v; });
  for (auto _ : state) {
    ev.Raise(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(EventRaiseNoGuard);

void EventRaiseWithGuard(benchmark::State& state) {
  spin::Event<int> ev("Bench.Event");
  (void)ev.Install([](int v) { g_sink += v; }, [](int v) { return v > 0; });
  for (auto _ : state) {
    ev.Raise(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(EventRaiseWithGuard);

// N handlers each guarded on a distinct key; exactly one fires per raise —
// the protocol-graph demux pattern. Shows linear guard-chain scaling.
void EventDemuxGuardChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  spin::Event<int> ev("Bench.Demux");
  for (int i = 0; i < n; ++i) {
    (void)ev.Install([](int v) { g_sink += v; }, [i](int v) { return v == i; });
  }
  int key = 0;
  for (auto _ : state) {
    ev.Raise(key);
    key = (key + 1) % n;
    benchmark::DoNotOptimize(g_sink);
  }
  state.SetComplexityN(n);
}
BENCHMARK(EventDemuxGuardChain)->RangeMultiplier(4)->Range(1, 256)->Complexity();

void EventInstallUninstall(benchmark::State& state) {
  spin::Event<int> ev("Bench.Install");
  for (auto _ : state) {
    auto id = ev.Install([](int) {});
    ev.Uninstall(id.value());
  }
}
BENCHMARK(EventInstallUninstall);

}  // namespace

BENCHMARK_MAIN();
