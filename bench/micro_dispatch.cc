// Microbenchmark for the Section 2 claim: "the overhead of invoking each
// handler is roughly one procedure call."
//
// Measures real wall time of Event::Raise against a direct virtual and
// direct std::function call, plus the scaling of guard chains (the demux
// cost as more endpoints install filters on one event).
//
// The custom main additionally guards the observability invariant: with the
// tracer disabled, Event::Raise must stay within a small constant factor of
// a direct call — instrumentation may not tax the fast path it is not
// observing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "sim/cost_model.h"
#include "sim/host.h"
#include "sim/simulator.h"
#include "sim/tracer.h"
#include "spin/dispatcher.h"
#include "spin/event.h"

namespace {

int g_sink = 0;

void DirectCall(benchmark::State& state) {
  std::function<void(int)> fn = [](int v) { g_sink += v; };
  for (auto _ : state) {
    fn(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(DirectCall);

void EventRaiseNoGuard(benchmark::State& state) {
  spin::Event<int> ev("Bench.Event");
  (void)ev.Install([](int v) { g_sink += v; });
  for (auto _ : state) {
    ev.Raise(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(EventRaiseNoGuard);

void EventRaiseWithGuard(benchmark::State& state) {
  spin::Event<int> ev("Bench.Event");
  (void)ev.Install([](int v) { g_sink += v; }, [](int v) { return v > 0; });
  for (auto _ : state) {
    ev.Raise(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(EventRaiseWithGuard);

// N handlers each guarded on a distinct key; exactly one fires per raise —
// the protocol-graph demux pattern. Shows linear guard-chain scaling.
void EventDemuxGuardChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  spin::Event<int> ev("Bench.Demux");
  for (int i = 0; i < n; ++i) {
    (void)ev.Install([](int v) { g_sink += v; }, [i](int v) { return v == i; });
  }
  int key = 0;
  for (auto _ : state) {
    ev.Raise(key);
    key = (key + 1) % n;
    benchmark::DoNotOptimize(g_sink);
  }
  state.SetComplexityN(n);
}
BENCHMARK(EventDemuxGuardChain)->RangeMultiplier(4)->Range(1, 256)->Complexity();

void EventInstallUninstall(benchmark::State& state) {
  spin::Event<int> ev("Bench.Install");
  for (auto _ : state) {
    auto id = ev.Install([](int) {});
    ev.Uninstall(id.value());
  }
}
BENCHMARK(EventInstallUninstall);

// Best-of-trials wall time per operation: the minimum is robust against
// scheduler noise on shared machines.
template <typename Fn>
double NsPerOp(Fn&& fn) {
  constexpr int kIters = 200000;
  constexpr int kTrials = 7;
  double best = 1e100;
  for (int t = 0; t < kTrials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      fn();
      benchmark::DoNotOptimize(g_sink);
    }
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
        kIters;
    best = std::min(best, ns);
  }
  return best;
}

// Asserts the "tracing disabled adds no measurable cost" acceptance
// criterion. Bounds are deliberately loose — they catch a raise path that
// started building span names or touching the ring while disabled, not
// nanosecond drift.
int CheckDisabledTracingCost() {
  std::function<void(int)> direct = [](int v) { g_sink += v; };

  spin::Event<int> detached("Bench.Detached");
  (void)detached.Install([](int v) { g_sink += v; });

  sim::Simulator sim;
  sim.tracer().SetEnabled(false);  // explicit: immune to PLEXUS_TRACE in the env
  sim::Host host(sim, "bench", sim::CostModel::Default1996(), 1);
  spin::Dispatcher dispatcher(&host);
  spin::Event<int> attached("Bench.Attached", &dispatcher);
  (void)attached.Install([](int v) { g_sink += v; });

  const double call_ns = NsPerOp([&] { direct(1); });
  const double raise_ns = NsPerOp([&] { detached.Raise(1); });
  const double attached_ns = NsPerOp([&] { attached.Raise(1); });

  const double raise_vs_call = raise_ns / call_ns;
  const double attached_vs_detached = attached_ns / raise_ns;
  std::printf("\ntracing-disabled cost check:\n");
  std::printf("  direct call            %8.2f ns/op\n", call_ns);
  std::printf("  raise (no host)        %8.2f ns/op  (%.2fx call)\n", raise_ns, raise_vs_call);
  std::printf("  raise (host, no trace) %8.2f ns/op  (%.2fx detached)\n", attached_ns,
              attached_vs_detached);

  int rc = 0;
  if (raise_vs_call > 40.0) {
    std::fprintf(stderr, "FAIL: Raise is %.1fx a direct call (limit 40x) — the paper's "
                         "'roughly one procedure call' claim no longer holds\n",
                 raise_vs_call);
    rc = 1;
  }
  if (attached_vs_detached > 6.0) {
    std::fprintf(stderr, "FAIL: a host-attached raise with tracing disabled is %.1fx a "
                         "detached raise (limit 6x) — disabled tracing is taxing dispatch\n",
                 attached_vs_detached);
    rc = 1;
  }
  if (rc == 0) std::printf("  PASS\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return CheckDisabledTracingCost();
}
