// Microbenchmark for the Section 2 claim: "the overhead of invoking each
// handler is roughly one procedure call."
//
// Measures real wall time of Event::Raise against a direct virtual and
// direct std::function call, plus the scaling of guard chains (the demux
// cost as more endpoints install filters on one event).
//
// The custom main additionally guards the observability invariant: with the
// tracer disabled, Event::Raise must stay within a small constant factor of
// a direct call — instrumentation may not tax the fast path it is not
// observing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"

#include "sim/batch.h"
#include "sim/cost_model.h"
#include "sim/host.h"
#include "sim/profiler.h"
#include "sim/simulator.h"
#include "sim/tracer.h"
#include "spin/dispatcher.h"
#include "spin/event.h"

namespace {

int g_sink = 0;

void DirectCall(benchmark::State& state) {
  std::function<void(int)> fn = [](int v) { g_sink += v; };
  for (auto _ : state) {
    fn(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(DirectCall);

void EventRaiseNoGuard(benchmark::State& state) {
  spin::Event<int> ev("Bench.Event");
  (void)ev.Install([](int v) { g_sink += v; });
  for (auto _ : state) {
    ev.Raise(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(EventRaiseNoGuard);

void EventRaiseWithGuard(benchmark::State& state) {
  spin::Event<int> ev("Bench.Event");
  (void)ev.Install([](int v) { g_sink += v; }, [](int v) { return v > 0; });
  for (auto _ : state) {
    ev.Raise(1);
    benchmark::DoNotOptimize(g_sink);
  }
}
BENCHMARK(EventRaiseWithGuard);

// N handlers each guarded on a distinct key; exactly one fires per raise —
// the protocol-graph demux pattern. Shows linear guard-chain scaling.
void EventDemuxGuardChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  spin::Event<int> ev("Bench.Demux");
  for (int i = 0; i < n; ++i) {
    (void)ev.Install([](int v) { g_sink += v; }, [i](int v) { return v == i; });
  }
  int key = 0;
  for (auto _ : state) {
    ev.Raise(key);
    key = (key + 1) % n;
    benchmark::DoNotOptimize(g_sink);
  }
  state.SetComplexityN(n);
}
BENCHMARK(EventDemuxGuardChain)->RangeMultiplier(4)->Range(1, 1024)->Complexity();

// The same demux pattern through the compiled index: one hash probe per
// raise instead of N guard evaluations. Near-flat in N.
void EventDemuxIndexed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  spin::Event<int> ev("Bench.DemuxIndexed");
  ev.SetDemuxKey("key", [](int v) { return std::optional<std::uint64_t>(
                            static_cast<std::uint64_t>(v)); });
  for (int i = 0; i < n; ++i) {
    (void)ev.InstallKeyed([](int v) { g_sink += v; }, static_cast<std::uint64_t>(i));
  }
  int key = 0;
  for (auto _ : state) {
    ev.Raise(key);
    key = (key + 1) % n;
    benchmark::DoNotOptimize(g_sink);
  }
  state.SetComplexityN(n);
}
BENCHMARK(EventDemuxIndexed)->RangeMultiplier(4)->Range(1, 1024)->Complexity();

void EventInstallUninstall(benchmark::State& state) {
  spin::Event<int> ev("Bench.Install");
  for (auto _ : state) {
    auto id = ev.Install([](int) {});
    ev.Uninstall(id.value());
  }
}
BENCHMARK(EventInstallUninstall);

// Best-of-trials wall time per operation: the minimum is robust against
// scheduler noise on shared machines.
template <typename Fn>
double NsPerOpIters(int iters, Fn&& fn) {
  constexpr int kTrials = 7;
  double best = 1e100;
  for (int t = 0; t < kTrials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
      benchmark::DoNotOptimize(g_sink);
    }
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
        iters;
    best = std::min(best, ns);
  }
  return best;
}

template <typename Fn>
double NsPerOp(Fn&& fn) {
  return NsPerOpIters(200000, std::forward<Fn>(fn));
}

// Asserts the "tracing disabled adds no measurable cost" acceptance
// criterion. Bounds are deliberately loose — they catch a raise path that
// started building span names or touching the ring while disabled, not
// nanosecond drift.
int CheckDisabledTracingCost() {
  std::function<void(int)> direct = [](int v) { g_sink += v; };

  spin::Event<int> detached("Bench.Detached");
  (void)detached.Install([](int v) { g_sink += v; });

  sim::Simulator sim;
  sim.tracer().SetEnabled(false);  // explicit: immune to PLEXUS_TRACE in the env
  sim::Host host(sim, "bench", sim::CostModel::Default1996(), 1);
  spin::Dispatcher dispatcher(&host);
  spin::Event<int> attached("Bench.Attached", &dispatcher);
  (void)attached.Install([](int v) { g_sink += v; });

  const double call_ns = NsPerOp([&] { direct(1); });
  const double raise_ns = NsPerOp([&] { detached.Raise(1); });
  const double attached_ns = NsPerOp([&] { attached.Raise(1); });

  const double raise_vs_call = raise_ns / call_ns;
  const double attached_vs_detached = attached_ns / raise_ns;
  std::printf("\ntracing-disabled cost check:\n");
  std::printf("  direct call            %8.2f ns/op\n", call_ns);
  std::printf("  raise (no host)        %8.2f ns/op  (%.2fx call)\n", raise_ns, raise_vs_call);
  std::printf("  raise (host, no trace) %8.2f ns/op  (%.2fx detached)\n", attached_ns,
              attached_vs_detached);

  int rc = 0;
  if (raise_vs_call > 40.0) {
    std::fprintf(stderr, "FAIL: Raise is %.1fx a direct call (limit 40x) — the paper's "
                         "'roughly one procedure call' claim no longer holds\n",
                 raise_vs_call);
    rc = 1;
  }
  if (attached_vs_detached > 6.0) {
    std::fprintf(stderr, "FAIL: a host-attached raise with tracing disabled is %.1fx a "
                         "detached raise (limit 6x) — disabled tracing is taxing dispatch\n",
                 attached_vs_detached);
    rc = 1;
  }
  if (rc == 0) std::printf("  PASS\n");
  return rc;
}

// The profiler satellite of the same invariant: with profiling off, a probe
// is one load + one predictable branch. Measures the disabled probe's
// marginal cost directly (probed loop minus empty loop, best-of-trials) and
// requires that the ~3 probes the raise path crosses (raise, demux lookup,
// guard) cost under 2% of a raise. The marginal cost is the difference of
// two sub-nanosecond loop timings, so one attempt can read high on a noisy
// machine; a genuinely heavy disabled path fails every attempt, so the gate
// takes the best of several.
int CheckDisabledProfilerCost() {
  sim::Profiler::SetEnabled(false);  // explicit: immune to PLEXUS_PROFILE in the env

  spin::Event<int> ev("Bench.ProfOff");
  (void)ev.Install([](int v) { g_sink += v; });
  const double raise_ns = NsPerOp([&] { ev.Raise(1); });

  constexpr double kProbesPerRaise = 3.0;
  constexpr int kAttempts = 5;
  double overhead = 1e100;
  double probe_ns = 0.0, probed_ns = 0.0, empty_ns = 0.0;
  for (int a = 0; a < kAttempts; ++a) {
    // The marginal cost is well under a nanosecond, so these two loops need
    // an order of magnitude more iterations than the raise loop to push the
    // measurement floor below the gate.
    const double e = NsPerOpIters(2000000, [] { g_sink += 1; });
    const double p = NsPerOpIters(2000000, [] {
      PLEXUS_PROFILE_SCOPE(kEventRaise);
      g_sink += 1;
    });
    const double marginal = std::max(0.0, p - e);
    const double o = kProbesPerRaise * marginal / raise_ns;
    if (o < overhead) {
      overhead = o;
      probe_ns = marginal;
      probed_ns = p;
      empty_ns = e;
    }
    if (overhead < 0.02) break;  // already inside the gate; stop burning time
  }

  // Code-alignment luck (ASLR) can make the probed loop read a few tenths of
  // a nanosecond slow for an entire process lifetime, which retries inside
  // the process cannot wash out. Anything under half a nanosecond is at most
  // a load and a branch — the invariant this gate protects — while a real
  // regression (span names, ring writes, map lookups) costs tens of
  // nanoseconds and clears both bounds by an order of magnitude.
  constexpr double kNoiseFloorNs = 0.5;
  const bool within = overhead < 0.02 || probe_ns < kNoiseFloorNs;

  std::printf("\nprofiler-disabled cost check:\n");
  std::printf("  raise (probes disabled) %8.2f ns/op\n", raise_ns);
  std::printf("  disabled probe          %8.3f ns marginal (%.3f probed - %.3f empty)\n",
              probe_ns, probed_ns, empty_ns);
  std::printf("  est. %.0f probes/raise   %8.2f%% of a raise (limit 2%%, "
              "or <%.1f ns/probe)\n",
              kProbesPerRaise, overhead * 100.0, kNoiseFloorNs);

  if (!within) {
    std::fprintf(stderr, "FAIL: disabled profiler probes cost %.2f%% of a raise "
                         "(%.3f ns/probe; limit 2%% or <%.1f ns) — the disabled "
                         "path is no longer one load and one branch\n",
                 overhead * 100.0, probe_ns, kNoiseFloorNs);
    return 1;
  }
  std::printf("  PASS\n");
  return 0;
}

// --- Demux scaling: linear guard chain vs compiled index ---------------------

void InstallLinearChain(spin::Event<int>& ev, int n) {
  for (int i = 0; i < n; ++i) {
    (void)ev.Install([](int v) { g_sink += v; }, [i](int v) { return v == i; });
  }
}

void InstallIndexedChain(spin::Event<int>& ev, int n) {
  ev.SetDemuxKey("key", [](int v) {
    return std::optional<std::uint64_t>(static_cast<std::uint64_t>(v));
  });
  for (int i = 0; i < n; ++i) {
    (void)ev.InstallKeyed([](int v) { g_sink += v; }, static_cast<std::uint64_t>(i));
  }
}

// Virtual CPU time per raise under the 1996 cost model: the linear chain
// charges n guard_evals, the index one demux_lookup.
double SimulatedNsPerRaise(bool indexed, int n) {
  sim::Simulator sim;
  sim::Host host(sim, "bench", sim::CostModel::Default1996(), 1);
  spin::Dispatcher dispatcher(&host);
  spin::Event<int> ev("Bench.DemuxSim", &dispatcher);
  if (indexed) {
    InstallIndexedChain(ev, n);
  } else {
    InstallLinearChain(ev, n);
  }
  constexpr int kRaises = 256;
  host.Submit(sim::Priority::kKernel, [&] {
    for (int i = 0; i < kRaises; ++i) ev.Raise(i % n);
  });
  sim.Run();
  return static_cast<double>(host.cpu().busy_total().ns()) / kRaises;
}

// Measures the demux pattern (one matching handler out of N) on the linear
// and indexed paths, prints the table, adds plexus-bench-v1 records to the
// shared reporter, and enforces the perf-smoke gate: indexed at N=256 must
// beat the linear scan by at least 5x wall-clock.
int RunDemuxScaling(bench::JsonReporter& reporter) {
  std::printf("\ndemux scaling (one matching handler out of N):\n");
  std::printf("  %6s | %12s %12s %8s | %13s %13s\n", "N", "linear ns", "indexed ns",
              "speedup", "linear sim-ns", "indexed sim-ns");
  double linear_256 = 0, indexed_256 = 0;
  for (int n : {1, 16, 256, 1024}) {
    spin::Event<int> lin("Bench.DemuxLinear");
    InstallLinearChain(lin, n);
    spin::Event<int> idx("Bench.DemuxIndexed");
    InstallIndexedChain(idx, n);
    const int iters = std::max(2000, 400000 / n);
    int key = 0;
    const double lin_ns = NsPerOpIters(iters, [&] {
      lin.Raise(key);
      key = (key + 1) % n;
    });
    key = 0;
    const double idx_ns = NsPerOpIters(iters, [&] {
      idx.Raise(key);
      key = (key + 1) % n;
    });
    const double lin_sim = SimulatedNsPerRaise(false, n);
    const double idx_sim = SimulatedNsPerRaise(true, n);
    std::printf("  %6d | %12.1f %12.1f %7.1fx | %13.1f %13.1f\n", n, lin_ns, idx_ns,
                lin_ns / idx_ns, lin_sim, idx_sim);
    if (n == 256) {
      linear_256 = lin_ns;
      indexed_256 = idx_ns;
    }
    for (const bool indexed : {false, true}) {
      bench::BenchRecord r;
      r.experiment = "micro_demux_scaling";
      r.device = "wall-clock";
      r.system = indexed ? "indexed" : "linear";
      r.metric = "raise_n" + std::to_string(n);
      r.unit = "ns";
      r.measured = indexed ? idx_ns : lin_ns;
      r.paper_expected = "~1 procedure call";
      r.metrics_json = "{\"n\":" + std::to_string(n) + ",\"simulated_ns_per_raise\":" +
                       std::to_string(indexed ? idx_sim : lin_sim) + "}";
      reporter.Add(std::move(r));
    }
  }
  int rc = 0;
  const double speedup = linear_256 / indexed_256;
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: indexed dispatch at N=256 is only %.1fx the linear scan "
                         "(gate: >=5x) — the demux index is not doing its job\n",
                 speedup);
    rc = 1;
  } else {
    std::printf("  demux gate PASS: indexed is %.1fx linear at N=256 (>=5x required)\n",
                speedup);
  }
  return rc;
}

// --- Batched dispatch: RaiseBatch vs the per-packet Raise loop ---------------

// Virtual CPU time per packet when `burst` same-key packets cross the event:
// the per-packet loop pays demux_lookup + event_dispatch each; RaiseBatch
// pays the probe and full dispatch once and batch_dispatch for the rest.
double SimulatedNsPerPacket(bool batched, int burst) {
  sim::Simulator sim;
  sim::Host host(sim, "bench", sim::CostModel::Default1996(), 1);
  spin::Dispatcher dispatcher(&host);
  spin::Event<int> ev("Bench.BatchSim", &dispatcher);
  InstallIndexedChain(ev, 16);
  constexpr int kBursts = 256;
  host.Submit(sim::Priority::kKernel, [&] {
    std::vector<int> items(static_cast<std::size_t>(burst), 3);
    for (int b = 0; b < kBursts; ++b) {
      if (batched) {
        ev.RaiseBatch(items, [](int& v) { return std::forward_as_tuple(v); });
      } else {
        for (int v : items) ev.Raise(v);
      }
    }
  });
  sim.Run();
  return static_cast<double>(host.cpu().busy_total().ns()) / (kBursts * burst);
}

// The batching acceptance gate: at burst 16 the batched path must cost at
// least 2x less simulated CPU per packet than the per-packet loop. Also
// prints wall-clock per packet — the host-machine cost of the partition
// bookkeeping itself — which is informational, not gated.
int RunBatchDispatch(bench::JsonReporter& reporter) {
  const bool prev = sim::BatchConfig::enabled();
  sim::BatchConfig::SetEnabled(true);
  std::printf("\nbatched dispatch (one flow, RaiseBatch vs per-packet Raise):\n");
  std::printf("  %6s | %14s %14s %8s | %12s\n", "burst", "per-pkt sim-ns",
              "batched sim-ns", "speedup", "batched wall");
  double ratio_16 = 0.0;
  for (int burst : {1, 4, 16, 64}) {
    const double per_pkt = SimulatedNsPerPacket(/*batched=*/false, burst);
    const double batched = SimulatedNsPerPacket(/*batched=*/true, burst);
    spin::Event<int> ev("Bench.BatchWall");
    InstallIndexedChain(ev, 16);
    std::vector<int> items(static_cast<std::size_t>(burst), 3);
    const int iters = std::max(2000, 200000 / burst);
    const double wall = NsPerOpIters(iters, [&] {
                          ev.RaiseBatch(items,
                                        [](int& v) { return std::forward_as_tuple(v); });
                        }) /
                        burst;
    const double speedup = per_pkt / batched;
    if (burst == 16) ratio_16 = speedup;
    std::printf("  %6d | %14.1f %14.1f %7.2fx | %9.1f ns\n", burst, per_pkt, batched,
                speedup, wall);
    bench::BenchRecord r;
    r.experiment = "micro_batch_dispatch";
    r.device = "sim-1996";
    r.system = "batched";
    r.metric = "ns_per_pkt_burst" + std::to_string(burst);
    r.unit = "sim_ns";
    r.measured = batched;
    r.paper_expected = "amortized dispatch";
    r.metrics_json = "{\"per_packet_sim_ns\":" + std::to_string(per_pkt) +
                     ",\"wall_ns_per_pkt\":" + std::to_string(wall) + "}";
    reporter.Add(std::move(r));
  }
  sim::BatchConfig::SetEnabled(prev);
  if (ratio_16 < 2.0) {
    std::fprintf(stderr, "FAIL: batched dispatch at burst 16 is only %.2fx the "
                         "per-packet path (gate: >=2x) — amortization is not "
                         "reaching the cost model\n",
                 ratio_16);
    return 1;
  }
  std::printf("  batch gate PASS: batched is %.2fx per-packet at burst 16 "
              "(>=2x required)\n",
              ratio_16);
  return 0;
}

// Removes "--flag value" from argv (returning value) so our custom flags
// don't trip benchmark::ReportUnrecognizedArguments.
std::string TakeFlagValue(int& argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return value;
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = TakeFlagValue(argc, argv, "--json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int rc = CheckDisabledTracingCost();
  rc |= CheckDisabledProfilerCost();
  bench::JsonReporter reporter;
  rc |= RunDemuxScaling(reporter);
  rc |= RunBatchDispatch(reporter);
  if (!json_path.empty() && !reporter.WriteTo(json_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
    rc = 1;
  }
  return rc;
}
