// Adversarial bench (not a paper figure): what hostile traffic costs a
// legitimate flow, and whether the hardening holds it.
//
// Three sweeps over a client/server pair on a 10 Mb/s Ethernet (hostile
// frames are injected straight into the victim NIC, so they cost the victim
// CPU and protocol state but not link bandwidth — the measured effect is the
// stack's, not the wire's):
//
//  1. SYN flood vs connection churn. A client runs back-to-back 64 KiB
//     connect/transfer/close cycles for 15 s while spoofed SYNs hit the
//     listener at 0/500/1000/2000 per second, with SYN cookies in kAuto
//     versus kNever (backlog 64 in both). Retention is bytes delivered
//     relative to the unflooded run. Cookies should hold the line; the
//     cookie-less listener's backlog wedges solid (embryonic TCBs outlive
//     the horizon) and churn collapses.
//
//  2. Blind RST injection. A 2 MiB transfer runs while tuple-aware RSTs
//     (right 4-tuple — the client's port is fixed — wrong sequence; a Weyl
//     sweep over the 32-bit space guarantees in-window guesses at the top
//     rate) spray the server. RFC 5961 demotes them to challenge ACKs:
//     bytes must survive exactly and completion time barely move.
//
//  3. Fuzz storm corpus. RunFuzzScenario per seed (default 1000;
//     --fuzz-seeds N overrides): a structure-aware mutator sprays hostile
//     frames at a live stack mid-transfer. Every seed must keep the
//     transfer byte-exact, quarantine nothing, and drain every pool.
//
// Flags:
//   --json <path>    write every point as plexus-bench-v1 JSON
//   --fuzz-seeds N   fuzz corpus size (default 1000)
//
// Exit gates (non-zero exit on failure; scripts/check.sh runs this):
//   * SYN flood 1000/s with cookies (kAuto): goodput retention >= 80%
//   * SYN flood 1000/s without cookies (kNever): retention < 50% — the
//     collapse the cookies exist to prevent; if this "passes", the flood
//     harness itself is broken
//   * RST injection at every rate: byte-exact transfer, retention >= 80%,
//     and at least one challenge ACK at the top rate
//   * fuzz corpus: zero corrupted transfers, zero quarantines, zero leaks,
//     and the mutator actually reached the per-layer validators
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "tests/adversarial_util.h"

namespace {

using adversarial::InjectAt;
using adversarial::Pair;
using adversarial::TcpSegmentBytes;
using adversarial::WrapIp;

const net::MacAddress kAttackerMac = net::MacAddress::FromId(0x66);

net::Ipv4Address SpoofedIp(int i) {
  return net::Ipv4Address(203, 0, 113, static_cast<std::uint8_t>(1 + i % 250));
}

// Lowers both hosts' retransmission ceilings so post-horizon drains (failed
// handshakes, embryonic TCBs) converge in tens of virtual seconds.
void TightenRto(Pair& p) {
  proto::TcpConfig cfg = p.client.tcp().config();
  cfg.rto_max = sim::Duration::Seconds(2);
  p.client.tcp().set_config(cfg);
  // Pair() already tightened the server.
}

bool DrainedCleanly(Pair& p) {
  p.sim.Run();  // every timer is bounded; this terminates
  return p.server.mbuf_pool().in_use() == 0 &&
         p.client.mbuf_pool().in_use() == 0 &&
         p.server.dispatcher().stats().quarantines == 0 &&
         p.client.dispatcher().stats().quarantines == 0;
}

// --- sweep 1: SYN flood vs connection churn -------------------------------

struct ChurnResult {
  double mbytes = 0;  // delivered to the server inside the horizon
  bool clean = false;
  std::uint64_t cookies_sent = 0;
  std::uint64_t overflows = 0;
};

ChurnResult ChurnUnderSynFlood(int syn_rate_per_s, proto::SynCookies mode) {
  Pair p;
  TightenRto(p);
  const sim::Duration horizon = sim::Duration::Seconds(15);

  std::uint64_t delivered = 0;
  std::vector<std::shared_ptr<core::PlexusTcpEndpoint>> keep;
  proto::ListenOptions opts;
  opts.syn_backlog = 64;
  opts.cookies = mode;
  p.server.tcp().Listen(
      80,
      [&](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
        core::PlexusTcpEndpoint* raw = ep.get();
        raw->SetOnData(
            [&delivered](std::span<const std::byte> d) { delivered += d.size(); });
        raw->SetOnClose([raw] { raw->CloseStream(); });
        keep.push_back(std::move(ep));
      },
      opts);

  if (syn_rate_per_s > 0) {
    const auto gap = sim::Duration::Nanos(1'000'000'000ll / syn_rate_per_s);
    const int count = static_cast<int>(horizon.ns() / gap.ns());
    for (int i = 0; i < count; ++i) {
      auto seg = TcpSegmentBytes(static_cast<std::uint16_t>(1024 + i % 60000),
                                 80, static_cast<std::uint32_t>(7 * i), 0,
                                 net::tcpflag::kSyn, 8192, SpoofedIp(i),
                                 Pair::ServerIp());
      InjectAt(p.sim, p.server, gap * i,
               WrapIp(Pair::ServerMac(), kAttackerMac, SpoofedIp(i),
                      Pair::ServerIp(), net::ipproto::kTcp, seg));
    }
  }

  // Back-to-back 64 KiB connections; the next begins when the previous
  // closes. Starts at 300 ms, after any flood has had time to wedge a
  // cookie-less backlog (64 embryonic slots fill in <= 128 ms at the
  // slowest swept rate).
  const std::vector<std::byte> blob(64 * 1024, std::byte{0x42});
  bool stop = false;
  std::shared_ptr<core::PlexusTcpEndpoint> cep;
  std::function<void()> next = [&] {
    if (stop) return;
    p.client.Run([&] {
      cep = p.client.tcp().Connect(Pair::ServerIp(), 80);
      cep->SetOnClose([&] {
        p.sim.Schedule(sim::Duration::Millis(1), [&] { next(); });
      });
      cep->SetOnEstablished([&] {
        cep->Write(blob);
        cep->CloseStream();
      });
    });
  };
  p.sim.Schedule(sim::Duration::Millis(300), [&] { next(); });
  p.sim.RunUntil(sim::TimePoint() + horizon);
  stop = true;

  ChurnResult out;
  out.mbytes = static_cast<double>(delivered) / (1024.0 * 1024.0);
  out.cookies_sent = p.ServerCounter("tcp.syn_cookies_sent");
  out.overflows = p.ServerCounter("tcp.listen_overflows");
  out.clean = DrainedCleanly(p);
  return out;
}

// --- sweep 2: blind RST injection vs a long transfer ----------------------

struct RstResult {
  bool exact = false;
  bool clean = false;
  double completion_s = 0;
  std::uint64_t challenge_acks = 0;
};

RstResult TransferUnderRstSpray(int rst_rate_per_s) {
  Pair p;
  TightenRto(p);
  constexpr std::uint16_t kClientPort = 45000;

  std::vector<std::byte> payload(2 * 1024 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((i * 31 + 7) & 0xff);
  }

  std::uint64_t delivered = 0;
  bool exact_so_far = true;
  std::vector<std::shared_ptr<core::PlexusTcpEndpoint>> keep;
  p.server.tcp().Listen(80, [&](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
    core::PlexusTcpEndpoint* raw = ep.get();
    raw->SetOnData([&](std::span<const std::byte> d) {
      for (std::byte b : d) {
        if (b != payload[delivered]) exact_so_far = false;
        ++delivered;
      }
    });
    raw->SetOnClose([raw] { raw->CloseStream(); });
    keep.push_back(std::move(ep));
  });

  RstResult out;
  std::shared_ptr<core::PlexusTcpEndpoint> cep;
  p.client.Run([&] {
    cep = p.client.tcp().Connect(Pair::ServerIp(), 80, kClientPort);
    cep->SetOnEstablished([&] {
      cep->Write(payload);
      cep->CloseStream();
    });
  });

  if (rst_rate_per_s > 0) {
    // 5 s of spray brackets the whole transfer (~2 s clean). The Weyl
    // stride covers the sequence space with max gap ~2^32/count, below the
    // 64 KiB receive window at the top rate — at least one guess lands
    // in-window, the shot that kills a pre-RFC 5961 stack.
    const auto gap = sim::Duration::Nanos(1'000'000'000ll / rst_rate_per_s);
    const int count = static_cast<int>(5ll * rst_rate_per_s);
    for (int i = 0; i < count; ++i) {
      const std::uint32_t seq =
          static_cast<std::uint32_t>(2654435761u * static_cast<std::uint32_t>(i));
      auto seg = TcpSegmentBytes(kClientPort, 80, seq, 0, net::tcpflag::kRst,
                                 0, Pair::ClientIp(), Pair::ServerIp());
      InjectAt(p.sim, p.server, gap * i,
               WrapIp(Pair::ServerMac(), kAttackerMac, Pair::ClientIp(),
                      Pair::ServerIp(), net::ipproto::kTcp, seg));
    }
  }

  bool done = false;
  double completion_s = 0;
  // Completion = all bytes in and the server-side close handshake done; we
  // watch delivered bytes from a poller so the hot path stays untouched.
  std::function<void()> poll = [&] {
    if (delivered >= payload.size()) {
      done = true;
      completion_s = (p.sim.Now() - sim::TimePoint()).seconds();
      return;
    }
    p.sim.Schedule(sim::Duration::Millis(10), [&] { poll(); });
  };
  p.sim.Schedule(sim::Duration::Millis(10), [&] { poll(); });
  p.sim.RunUntil(sim::TimePoint() + sim::Duration::Seconds(60));

  out.exact = done && exact_so_far && delivered == payload.size();
  out.completion_s = completion_s;
  out.challenge_acks = p.ServerCounter("tcp.challenge_acks");
  out.clean = DrainedCleanly(p);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  int fuzz_seeds = 1000;
  const std::string seeds_arg = bench::ArgAfter(argc, argv, "--fuzz-seeds");
  if (!seeds_arg.empty()) fuzz_seeds = std::atoi(seeds_arg.c_str());

  bench::JsonReporter reporter;
  bool gates_ok = true;
  auto gate = [&](const char* what, bool ok) {
    std::printf("  GATE %-52s %s\n", what, ok ? "PASS" : "FAIL");
    gates_ok = gates_ok && ok;
  };

  // --- SYN flood sweep ---
  bench::PrintHeader(
      "syn flood: 15s of 64 KiB connection churn vs spoofed SYN rate");
  bool all_clean = true;
  const ChurnResult churn_base =
      ChurnUnderSynFlood(0, proto::SynCookies::kAuto);
  all_clean = all_clean && churn_base.clean;
  bench::PrintRow("unflooded churn", churn_base.mbytes, "MiB");
  double retention_auto_1000 = 0, retention_never_1000 = 0;
  for (proto::SynCookies mode :
       {proto::SynCookies::kAuto, proto::SynCookies::kNever}) {
    const char* mode_name = mode == proto::SynCookies::kAuto ? "cookies" : "no-cookies";
    for (int rate : {500, 1000, 2000}) {
      const ChurnResult r = ChurnUnderSynFlood(rate, mode);
      all_clean = all_clean && r.clean;
      const double retention =
          churn_base.mbytes > 0 ? r.mbytes / churn_base.mbytes * 100.0 : 0.0;
      if (rate == 1000 && mode == proto::SynCookies::kAuto) {
        retention_auto_1000 = retention;
      }
      if (rate == 1000 && mode == proto::SynCookies::kNever) {
        retention_never_1000 = retention;
      }
      char label[80];
      std::snprintf(label, sizeof(label), "%s %d SYN/s retention (cookies %llu)",
                    mode_name, rate,
                    static_cast<unsigned long long>(r.cookies_sent));
      bench::PrintRow(label, retention, "%");
      bench::BenchRecord rec;
      rec.experiment = "adversarial_synflood";
      rec.device = "eth10";
      char sys[48];
      std::snprintf(sys, sizeof(sys), "%s-%d", mode_name, rate);
      rec.system = sys;
      rec.metric = "goodput_retention";
      rec.unit = "%";
      rec.measured = retention;
      reporter.Add(rec);
    }
  }

  // --- RST injection sweep ---
  bench::PrintHeader("rst injection: 2 MiB transfer vs tuple-aware blind RSTs");
  const RstResult rst_base = TransferUnderRstSpray(0);
  all_clean = all_clean && rst_base.clean;
  bench::PrintRow("clean completion", rst_base.completion_s, "s");
  bool rst_all_exact = rst_base.exact;
  // Moderate-rate sprays must be absorbed with near-full goodput. At the
  // extreme rate the connection must survive byte-exact, but the victim's
  // challenge ACKs reach the data sender as duplicate ACKs and trigger
  // repeated fast-retransmit cwnd reductions — the classic challenge-ACK
  // storm side effect — so the gate there is "no livelock", not "no cost".
  double rst_moderate_retention = 100.0;
  double rst_extreme_retention = 100.0;
  std::uint64_t challenge_acks_top = 0;
  for (int rate : {500, 2000, 8000}) {
    const RstResult r = TransferUnderRstSpray(rate);
    all_clean = all_clean && r.clean;
    rst_all_exact = rst_all_exact && r.exact;
    const double retention =
        r.completion_s > 0 ? rst_base.completion_s / r.completion_s * 100.0 : 0.0;
    if (rate == 8000) {
      rst_extreme_retention = retention;
      challenge_acks_top = r.challenge_acks;
    } else if (retention < rst_moderate_retention) {
      rst_moderate_retention = retention;
    }
    char label[80];
    std::snprintf(label, sizeof(label), "%d RST/s retention (challenges %llu)",
                  rate, static_cast<unsigned long long>(r.challenge_acks));
    bench::PrintRow(label, retention, "%");
    bench::BenchRecord rec;
    rec.experiment = "adversarial_rst";
    rec.device = "eth10";
    char sys[32];
    std::snprintf(sys, sizeof(sys), "rst-%d", rate);
    rec.system = sys;
    rec.metric = "goodput_retention";
    rec.unit = "%";
    rec.measured = retention;
    reporter.Add(rec);
  }

  // --- fuzz storm corpus ---
  bench::PrintHeader("fuzz storm: seeded mutator corpus vs live transfer");
  int fuzz_failures = 0;
  std::uint64_t fuzz_malformed = 0;
  for (int s = 1; s <= fuzz_seeds; ++s) {
    const std::uint64_t seed = static_cast<std::uint64_t>(s) * 2654435761u + 17;
    const adversarial::FuzzOutcome out = adversarial::RunFuzzScenario(seed, 40);
    if (!out.transfer_exact || out.quarantines != 0 || !out.pools_drained) {
      ++fuzz_failures;
      std::printf("  FUZZ FAIL seed=%llu exact=%d quarantines=%llu drained=%d\n",
                  static_cast<unsigned long long>(seed), out.transfer_exact,
                  static_cast<unsigned long long>(out.quarantines),
                  out.pools_drained);
    }
    fuzz_malformed += out.malformed_total;
  }
  bench::PrintRow("seeds run", static_cast<double>(fuzz_seeds), "");
  bench::PrintRow("invariant failures", static_cast<double>(fuzz_failures), "");
  bench::PrintRow("malformed frames dropped", static_cast<double>(fuzz_malformed), "");
  {
    bench::BenchRecord rec;
    rec.experiment = "adversarial_fuzz";
    rec.device = "eth10";
    rec.system = "mutator";
    rec.metric = "invariant_failures";
    rec.unit = "count";
    rec.measured = static_cast<double>(fuzz_failures);
    reporter.Add(rec);
  }

  std::printf("\n");
  gate("cookies hold >= 80% churn at 1000 SYN/s", retention_auto_1000 >= 80.0);
  gate("cookie-less listener collapses (< 50%)", retention_never_1000 < 50.0);
  gate("RST spray: all transfers byte-exact", rst_all_exact);
  gate("RST spray: retention >= 80% at moderate rates", rst_moderate_retention >= 80.0);
  gate("RST spray: no livelock at 8000/s (>= 20%)", rst_extreme_retention >= 20.0);
  gate("RST spray: challenge ACKs fired at top rate", challenge_acks_top >= 1);
  gate("fuzz corpus: zero invariant failures", fuzz_failures == 0);
  gate("fuzz corpus: validators exercised", fuzz_malformed > 0);
  gate("all runs drained leak-free, zero quarantines", all_clean);

  if (!json_path.empty()) {
    if (!reporter.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu records: %s\n", reporter.size(), json_path.c_str());
  }
  return gates_ok ? 0 : 1;
}
