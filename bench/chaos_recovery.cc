// Chaos recovery bench (not a paper figure): what structural faults cost.
//
// Two measurements over the echo workload on a 10 Mb/s Ethernet pair:
//
//  1. Recovery overhead per fault family. A 256 KiB retried echo transfer
//     runs while one 1-second fault window (link down, server NIC stall, or
//     server crash + cold restart) opens at t=0.1s. Overhead is the extra
//     completion time beyond the clean run plus the unavoidable outage
//     itself — the price of retransmission backoff, reconnection, and
//     redone work.
//
//  2. Goodput retention vs link-flap intensity. A self-clocked echo stream
//     runs for a 20-second horizon against a periodic carrier flap
//     (period 2s, down-fraction swept 0 -> 0.5); retention is goodput
//     relative to the fault-free run.
//
// Flags:
//   --json <path>   write every point as plexus-bench-v1 JSON
//
// Exit gates (non-zero exit on failure; scripts/check.sh runs this):
//   * retention >= 60% at the standard flap (period 2s, down fraction 0.1)
//   * crash recovery overhead < 10s (the reborn host RSTs stale state
//     promptly; the client does not grind through full RTO spirals)
//   * every run drains leak-free: all mbuf pools back to zero, and no
//     handler quarantined on either host
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/echo.h"
#include "app/retry.h"
#include "bench/bench_common.h"
#include "core/plexus.h"
#include "drivers/device_profile.h"
#include "drivers/medium.h"
#include "sim/simulator.h"

namespace {

using core::PlexusHost;

constexpr std::uint16_t kEchoPort = 7;

// One client/server pair on a shared segment.
struct Pair {
  Pair()
      : segment(sim),
        client(sim, "client", sim::CostModel::Default1996(),
               drivers::DeviceProfile::Ethernet10(),
               {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24},
               core::HandlerMode::kInterrupt, 11),
        server(sim, "server", sim::CostModel::Default1996(),
               drivers::DeviceProfile::Ethernet10(),
               {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24},
               core::HandlerMode::kInterrupt, 22) {
    client.AttachTo(segment);
    server.AttachTo(segment);
    client.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
    server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
    proto::TcpConfig cfg;
    cfg.rto_max = sim::Duration::Seconds(2);
    client.tcp().set_config(cfg);
    server.tcp().set_config(cfg);
  }

  bool DrainedCleanly() {
    sim.Run();  // every timer is bounded; this terminates
    return client.host().mbuf_pool()->in_use() == 0 &&
           server.host().mbuf_pool()->in_use() == 0 &&
           client.dispatcher().stats().quarantines == 0 &&
           server.dispatcher().stats().quarantines == 0;
  }

  sim::Simulator sim;
  drivers::EthernetSegment segment;
  PlexusHost client, server;
};

enum class Fault { kNone, kLinkDown, kNicStall, kCrash };

const char* FaultName(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kLinkDown: return "link-down";
    case Fault::kNicStall: return "nic-stall";
    case Fault::kCrash: return "crash-restart";
  }
  return "?";
}

struct TransferResult {
  bool success = false;
  bool clean = false;     // drained with zero leaks/quarantines
  double completion_s = 0;
  int attempts = 0;
};

// A 256 KiB retried echo transfer with one 1-second fault window.
TransferResult TimedTransfer(Fault fault) {
  Pair p;
  app::EchoServer server(p.server, kEchoPort);

  std::vector<std::byte> payload(256 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>((i * 13) & 0xff);
  }
  app::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.max_backoff = sim::Duration::Seconds(2);
  policy.attempt_timeout = sim::Duration::Seconds(15);

  TransferResult out;
  app::RetryingEchoClient client(
      p.client.host(),
      [&]() -> std::shared_ptr<proto::ByteStream> {
        if (p.client.crashed()) return nullptr;
        return std::static_pointer_cast<proto::ByteStream>(
            p.client.tcp().Connect(net::Ipv4Address(10, 0, 0, 2), kEchoPort));
      },
      payload, policy, [&](const app::RetryingEchoClient::Result& r) {
        out.success = r.success;
        out.attempts = r.attempts;
        out.completion_s = (p.sim.Now() - sim::TimePoint()).seconds();
      });
  client.Start();

  const sim::Duration at = sim::Duration::Millis(100);  // mid-transfer
  const sim::Duration outage = sim::Duration::Seconds(1);
  switch (fault) {
    case Fault::kNone:
      break;
    case Fault::kLinkDown:
      p.sim.Schedule(at, [&] { p.segment.set_carrier(false); });
      p.sim.Schedule(at + outage, [&] { p.segment.set_carrier(true); });
      break;
    case Fault::kNicStall:
      p.sim.Schedule(at, [&] { p.server.nic().SetStalled(true); });
      p.sim.Schedule(at + outage, [&] { p.server.nic().SetStalled(false); });
      break;
    case Fault::kCrash:
      p.sim.Schedule(at, [&] { p.server.Crash(); });
      p.sim.Schedule(at + outage, [&] {
        p.server.Restart();
        server.Rearm();
      });
      break;
  }

  out.clean = p.DrainedCleanly();
  return out;
}

// Self-clocked echo stream for `horizon` against a periodic carrier flap:
// each period the link is up for (1-frac)*period then down for frac*period.
// Returns echoed goodput in Mb/s (and leak-check status via *clean).
double FlapGoodputMbps(double down_fraction, bool* clean) {
  Pair p;
  app::EchoServer server(p.server, kEchoPort);

  const sim::Duration horizon = sim::Duration::Seconds(20);
  const sim::Duration period = sim::Duration::Seconds(2);
  if (down_fraction > 0.0) {
    const auto down_len = sim::Duration::Nanos(
        static_cast<std::int64_t>(static_cast<double>(period.ns()) * down_fraction));
    for (sim::Duration t = period - down_len; t < horizon; t = t + period) {
      p.sim.Schedule(t, [&] { p.segment.set_carrier(false); });
      p.sim.Schedule(t + down_len, [&] { p.segment.set_carrier(true); });
    }
  }

  constexpr std::size_t kChunk = 8 * 1024;
  const std::vector<std::byte> chunk(kChunk, std::byte{0x6b});
  std::uint64_t echoed = 0;
  bool stopped = false;
  std::shared_ptr<core::PlexusTcpEndpoint> ep;
  p.client.Run([&] {
    ep = p.client.tcp().Connect(net::Ipv4Address(10, 0, 0, 2), kEchoPort);
    ep->SetOnEstablished([&] { ep->Write(chunk); });
    ep->SetOnData([&](std::span<const std::byte> d) {
      echoed += d.size();
      // Echo-clocked: refill what came back, keeping the pipe full without
      // overrunning the send buffer.
      if (!stopped) ep->Write(d);
    });
  });
  p.sim.ScheduleAt(sim::TimePoint() + horizon, [&] {
    stopped = true;
    p.client.Run([&] {
      if (ep->attached()) ep->CloseStream();
    });
  });
  p.sim.RunUntil(sim::TimePoint() + horizon);
  const double goodput =
      static_cast<double>(echoed) * 8.0 / horizon.seconds() / 1e6;  // Mb/s
  *clean = p.DrainedCleanly();
  return goodput;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  bench::JsonReporter reporter;
  bool gates_ok = true;
  auto gate = [&](const char* what, bool ok) {
    std::printf("  GATE %-52s %s\n", what, ok ? "PASS" : "FAIL");
    gates_ok = gates_ok && ok;
  };

  // --- recovery overhead per fault family ---
  bench::PrintHeader("chaos recovery: 256 KiB retried echo, one 1s fault at t=0.1s");
  const TransferResult base = TimedTransfer(Fault::kNone);
  bool all_clean = base.clean;
  bool all_success = base.success;
  double crash_overhead_s = 0;
  for (Fault f : {Fault::kLinkDown, Fault::kNicStall, Fault::kCrash}) {
    const TransferResult r = TimedTransfer(f);
    all_clean = all_clean && r.clean;
    all_success = all_success && r.success;
    const double overhead_s = r.completion_s - base.completion_s - 1.0;
    if (f == Fault::kCrash) crash_overhead_s = overhead_s;
    bench::PrintRow(std::string(FaultName(f)) + " recovery overhead (attempts " +
                        std::to_string(r.attempts) + ")",
                    overhead_s * 1000.0, "ms");
    bench::BenchRecord rec;
    rec.experiment = "chaos_recovery";
    rec.device = "eth10";
    rec.system = FaultName(f);
    rec.metric = "recovery_overhead";
    rec.unit = "ms";
    rec.measured = overhead_s * 1000.0;
    reporter.Add(rec);
  }
  {
    bench::BenchRecord rec;
    rec.experiment = "chaos_recovery";
    rec.device = "eth10";
    rec.system = "none";
    rec.metric = "clean_completion";
    rec.unit = "s";
    rec.measured = base.completion_s;
    reporter.Add(rec);
  }

  // --- goodput retention vs flap intensity ---
  bench::PrintHeader("chaos goodput: 20s echo stream vs carrier flap (period 2s)");
  bool clean = true;
  const double clean_goodput = FlapGoodputMbps(0.0, &clean);
  all_clean = all_clean && clean;
  bench::PrintRow("fault-free goodput", clean_goodput, "Mb/s");
  double retention_at_standard = 0;
  for (double frac : {0.05, 0.10, 0.20, 0.35, 0.50}) {
    const double goodput = FlapGoodputMbps(frac, &clean);
    all_clean = all_clean && clean;
    const double retention = clean_goodput > 0 ? goodput / clean_goodput * 100.0 : 0.0;
    if (frac == 0.10) retention_at_standard = retention;
    char label[64];
    std::snprintf(label, sizeof(label), "down fraction %.2f retention", frac);
    bench::PrintRow(label, retention, "%");
    bench::BenchRecord rec;
    rec.experiment = "chaos_goodput";
    rec.device = "eth10";
    char sys[32];
    std::snprintf(sys, sizeof(sys), "flap-%.2f", frac);
    rec.system = sys;
    rec.metric = "goodput_retention";
    rec.unit = "%";
    rec.measured = retention;
    reporter.Add(rec);
  }

  std::printf("\n");
  gate("all transfers completed byte-exactly", all_success);
  gate("retention >= 60% at standard flap (0.10)", retention_at_standard >= 60.0);
  gate("crash recovery overhead < 10s", crash_overhead_s < 10.0 && crash_overhead_s > 0.0);
  gate("all runs drained leak-free, zero quarantines", all_clean);

  if (!json_path.empty()) {
    if (!reporter.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu records: %s\n", reporter.size(), json_path.c_str());
  }
  return gates_ok ? 0 : 1;
}
