// Microbenchmark for the scheduler tentpole: schedule+cancel throughput of
// the hierarchical timing wheel against the binary heap it replaces, at
// connection-scale pending-timer populations.
//
// The workload is the TCP regime that motivated the wheel: a large stable
// population of pending timers (RTO / delack / 2MSL) where nearly every
// timer is cancelled and re-armed before it fires — each ACK disarms and
// re-arms the retransmit timer. The heap pays O(log n) per op plus the
// lazy-cancellation dead entries; the wheel pays O(1) with eager removal.
//
// Exit status is the perf gate: the wheel must deliver >= 1.5x the heap's
// schedule+cancel throughput at 64k pending timers. The gate was >= 5x
// when the heap baseline malloc'd a node per schedule; now both queues
// draw nodes from the same slab pool, so the remaining edge is purely
// algorithmic (O(1) eager cancel vs O(log n) sift + lazy-cancel debris)
// and measures ~2.4x — the gate asserts that algorithmic edge with
// headroom for machine noise, not the old allocation gap.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace {

// Deterministic 64-bit mix for delay spreading (splitmix64 step).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Timer horizons drawn from the TCP mix: 1ms..~64s (delack through backed-off
// RTO and 2MSL), hitting several wheel levels.
sim::Duration DelayFor(std::uint64_t k) {
  const std::int64_t span = sim::Duration::Seconds(64).ns() - 1000000;
  return sim::Duration::Nanos(
      1000000 + static_cast<std::int64_t>(Mix(k) % static_cast<std::uint64_t>(span)));
}

int g_fired = 0;

// Steady-state ns per (cancel + re-schedule) pair at `pending` outstanding
// timers. Best of `trials` fresh simulators.
double SchedCancelNsPerPair(sim::SchedulerImpl impl, int pending, int pairs,
                            int trials = 5) {
  double best = 1e100;
  for (int t = 0; t < trials; ++t) {
    sim::Simulator sim(impl);
    std::vector<sim::EventId> ids(static_cast<std::size_t>(pending));
    for (int i = 0; i < pending; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.Schedule(DelayFor(static_cast<std::uint64_t>(i)), [] { ++g_fired; });
    }
    std::size_t slot = 0;
    std::uint64_t k = static_cast<std::uint64_t>(pending);
    const auto start = std::chrono::steady_clock::now();
    for (int p = 0; p < pairs; ++p) {
      // The exact disarm/re-arm sequence of TcpConnection::CancelTimer +
      // ArmRexmt: probe, cancel, schedule.
      if (sim.IsPending(ids[slot])) sim.Cancel(ids[slot]);
      ids[slot] = sim.Schedule(DelayFor(k++), [] { ++g_fired; });
      slot = (slot + 1) % ids.size();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                stop - start)
                                .count()) /
        pairs;
    if (ns < best) best = ns;
  }
  return best;
}

// ns per fire when draining `pending` timers to empty (pop-side cost,
// including the wheel's cascades).
double DrainNsPerFire(sim::SchedulerImpl impl, int pending, int trials = 5) {
  double best = 1e100;
  for (int t = 0; t < trials; ++t) {
    sim::Simulator sim(impl);
    for (int i = 0; i < pending; ++i) {
      sim.Schedule(DelayFor(static_cast<std::uint64_t>(i)), [] { ++g_fired; });
    }
    const auto start = std::chrono::steady_clock::now();
    const std::size_t fired = sim.Run();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                stop - start)
                                .count()) /
        static_cast<double>(fired);
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  bench::JsonReporter reporter;

  std::printf("timer queue: schedule+cancel pairs and drain, wheel vs heap\n");
  std::printf("(the per-ACK disarm/re-arm pattern of N concurrent TCP connections)\n\n");
  std::printf("  %8s | %13s %13s %8s | %12s %12s\n", "pending", "heap ns/pair",
              "wheel ns/pair", "speedup", "heap drain", "wheel drain");

  double heap_64k = 0, wheel_64k = 0;
  for (const int pending : {1024, 16384, 65536}) {
    const int pairs = 200000;
    const double heap_pair =
        SchedCancelNsPerPair(sim::SchedulerImpl::kHeap, pending, pairs);
    const double wheel_pair =
        SchedCancelNsPerPair(sim::SchedulerImpl::kWheel, pending, pairs);
    const double heap_drain = DrainNsPerFire(sim::SchedulerImpl::kHeap, pending);
    const double wheel_drain = DrainNsPerFire(sim::SchedulerImpl::kWheel, pending);
    std::printf("  %8d | %13.1f %13.1f %7.1fx | %12.1f %12.1f\n", pending,
                heap_pair, wheel_pair, heap_pair / wheel_pair, heap_drain,
                wheel_drain);
    if (pending == 65536) {
      heap_64k = heap_pair;
      wheel_64k = wheel_pair;
    }
    for (const bool wheel : {false, true}) {
      bench::BenchRecord r;
      r.experiment = "micro_timer_queue";
      r.device = "wall-clock";
      r.system = wheel ? "wheel" : "heap";
      r.metric = "sched_cancel_n" + std::to_string(pending);
      r.unit = "ns/pair";
      r.measured = wheel ? wheel_pair : heap_pair;
      r.paper_expected = "n/a (scheduler ablation)";
      r.metrics_json = "{\"pending\":" + std::to_string(pending) +
                       ",\"drain_ns_per_fire\":" +
                       std::to_string(wheel ? wheel_drain : heap_drain) + "}";
      reporter.Add(std::move(r));
    }
  }

  int rc = 0;
  if (!json_path.empty() && !reporter.WriteTo(json_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
    rc = 1;
  }
  const double speedup = heap_64k / wheel_64k;
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: wheel schedule+cancel at 64k pending is only %.1fx the "
                 "heap (gate: >=1.5x) — eager O(1) cancellation is not paying off\n",
                 speedup);
    rc = 1;
  } else {
    std::printf("\n  timer gate PASS: wheel is %.1fx heap at 64k pending (>=1.5x required)\n",
                speedup);
  }
  return rc;
}
