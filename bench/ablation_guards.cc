// Ablations for two Plexus design choices:
//
//  1. Guard demux cost: how does receive latency scale with the number of
//     installed application endpoints? Keyed endpoints go through the
//     compiled demux index (flat); opaque lambda guards stay on the
//     residual linear list (the pre-compilation cost, still visible here
//     as the second column).
//
//  2. UDP checksum on/off: the Section 1.1 motivating example — what does
//     disabling the checksum buy an AV application, per packet size?
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "drivers/medium.h"

namespace {

// UDP RTT with `extra_endpoints` additional endpoints installed on the
// receiver (all on other ports). Keyed endpoints land in the demux index;
// with `opaque_guards` they are installed as raw lambda-guarded handlers
// instead, so every packet walks the residual list and evaluates them all.
double RttWithEndpoints(int extra_endpoints, bool opaque_guards = false) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  const auto costs = sim::CostModel::Default1996();
  core::PlexusHost a(sim, "a", costs, profile,
                     {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost b(sim, "b", costs, profile,
                     {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  a.AttachTo(segment);
  b.AttachTo(segment);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);

  spin::HandlerOptions opts;
  opts.ephemeral = true;
  std::vector<std::shared_ptr<core::UdpEndpoint>> extras;
  for (int i = 0; i < extra_endpoints; ++i) {
    const auto port = static_cast<std::uint16_t>(10000 + i);
    if (opaque_guards) {
      (void)b.udp().packet_recv().Install(
          [](const net::Mbuf&, const proto::UdpDatagram&) {},
          [port](const net::Mbuf&, const proto::UdpDatagram& info) {
            return info.dst_port == port;
          },
          opts);
    } else {
      auto ep = b.udp().CreateEndpoint(port).value();
      (void)ep->InstallReceiveHandler([](const net::Mbuf&, const proto::UdpDatagram&) {}, opts);
      extras.push_back(std::move(ep));
    }
  }

  auto client = a.udp().CreateEndpoint(5000).value();
  auto server = b.udp().CreateEndpoint(7).value();
  (void)server->InstallReceiveHandler(
      [&](const net::Mbuf& p, const proto::UdpDatagram& info) {
        server->Send(p.DeepCopy(), info.src_ip, info.src_port);
      },
      opts);

  double total = 0;
  int count = 0;
  sim::TimePoint sent_at;
  std::function<void()> send_ping = [&] {
    a.Run([&] {
      sent_at = sim.Now();
      client->Send(net::Mbuf::FromString("12345678"), net::Ipv4Address(10, 0, 0, 2), 7);
    });
  };
  (void)client->InstallReceiveHandler(
      [&](const net::Mbuf&, const proto::UdpDatagram&) {
        if (count > 0) total += (sim.Now() - sent_at).us();
        if (++count < 17) send_ping();
      },
      opts);
  send_ping();
  sim.RunFor(sim::Duration::Seconds(10));
  return count > 1 ? total / (count - 1) : -1;
}

// One-way send CPU cost with/without the UDP checksum, per payload size.
double SendCpuUs(bool checksum, std::size_t payload) {
  sim::Simulator sim;
  drivers::PointToPointLink link(sim);
  const auto profile = drivers::DeviceProfile::DecT3();
  const auto costs = sim::CostModel::Default1996();
  core::PlexusHost a(sim, "a", costs, profile,
                     {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost b(sim, "b", costs, profile,
                     {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  a.AttachTo(link);
  b.AttachTo(link);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  a.arp().AddStatic(net::Ipv4Address(10, 0, 0, 2), net::MacAddress::FromId(2));

  auto ep = a.udp().CreateEndpoint(5000).value();
  ep->set_checksum_enabled(checksum);
  const int kSends = 64;
  const sim::Duration before = a.host().cpu().busy_total();
  std::vector<std::byte> msg(payload);
  for (int i = 0; i < kSends; ++i) {
    a.Run([&] { ep->Send(net::Mbuf::FromBytes(msg), net::Ipv4Address(10, 0, 0, 2), 7); });
  }
  sim.RunFor(sim::Duration::Seconds(5));
  return (a.host().cpu().busy_total() - before).us() / kSends;
}

}  // namespace

int main() {
  std::printf("Ablation 1: receive latency vs installed endpoints\n");
  std::printf("%12s %16s %18s\n", "endpoints", "indexed (us)", "opaque guards (us)");
  double base = 0, opaque_256 = 0;
  for (int n : {0, 4, 16, 64, 256}) {
    const double indexed = RttWithEndpoints(n);
    const double opaque = RttWithEndpoints(n, /*opaque_guards=*/true);
    std::printf("%12d %16.1f %18.1f\n", n, indexed, opaque);
    if (n == 0) base = indexed;
    if (n == 256) opaque_256 = opaque;
  }
  std::printf("  per-guard cost: ~%.0f ns/guard/packet on the residual linear list;\n"
              "  keyed endpoints ride the compiled demux index for free\n",
              (opaque_256 - base) * 1000.0 / 256.0 / 2.0);

  std::printf("\nAblation 2: sender CPU per UDP datagram, checksum on vs off (T3)\n");
  std::printf("%12s %16s %16s %12s\n", "payload", "cksum on (us)", "cksum off (us)", "saved %");
  for (std::size_t payload : {64ul, 512ul, 1400ul, 4096ul, 12500ul}) {
    const double with_ck = SendCpuUs(true, payload);
    const double without = SendCpuUs(false, payload);
    std::printf("%12zu %16.1f %16.1f %11.1f%%\n", payload, with_ck, without,
                (with_ck - without) / with_ck * 100.0);
  }
  std::printf("  (the Section 1.1 motivation: an AV-specific UDP that skips the checksum)\n");
  return 0;
}
