// Figure 6: "Utilization of the server's CPU as a function of the number of
// client video streams" over the T3 network. "At 15 streams, both SPIN and
// DIGITAL UNIX saturate the network, but SPIN consumes only half as much of
// the processor."
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  const auto costs = sim::CostModel::Default1996();

  std::printf("Figure 6: video server CPU utilization vs streams (T3, 30fps, 12.5KB frames)\n");
  std::printf("%8s %14s %14s %10s %12s\n", "streams", "SPIN/Plexus %", "DIGITAL UNIX %", "ratio",
              "net-satur.");

  double plexus_at_15 = 0, du_at_15 = 0;
  for (int streams : {1, 2, 4, 6, 8, 10, 12, 15, 20, 25, 30}) {
    const auto p = bench::VideoServerCpu(/*plexus=*/true, streams, costs);
    const auto d = bench::VideoServerCpu(/*plexus=*/false, streams, costs);
    std::printf("%8d %14.1f %14.1f %10.2f %12s\n", streams, p.utilization * 100.0,
                d.utilization * 100.0, d.utilization / p.utilization,
                p.net_saturated ? "yes" : "no");
    if (streams == 15) {
      plexus_at_15 = p.utilization;
      du_at_15 = d.utilization;
    }
  }
  std::printf("\nAt 15 streams (network saturation): SPIN %.1f%%, DU %.1f%% -> DU/SPIN = %.2fx "
              "(paper: ~2x)\n",
              plexus_at_15 * 100, du_at_15 * 100, du_at_15 / plexus_at_15);
  std::printf("shape: DU uses ~2x the CPU of SPIN at saturation: %s\n",
              (du_at_15 > plexus_at_15 * 1.6) ? "HOLDS" : "VIOLATED");
  return 0;
}
