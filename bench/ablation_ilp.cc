// Ablation: the video client's integrated layer processing and the "better
// video hardware" prediction.
//
// Section 5.1: "The client viewer is a good candidate for the integrated
// layer processing optimizations suggested by Clark [CT90]" — but in 1996
// "the performance of the video client is limited by the write bandwidth of
// the framebuffer hardware rather than overhead incurred by the operating
// system ... We expect that with better video hardware, such as the DEC
// J300 device, the dominant performance bottleneck will be the protocol
// processing rather than the application processing."
//
// This bench measures client CPU per displayed frame across
// {two-pass, ILP} x {SFB framebuffer, J300-class framebuffer}, showing that
// ILP only pays off once the framebuffer stops dominating.
#include <cstdio>

#include "app/video.h"
#include "bench/bench_common.h"
#include "drivers/medium.h"

namespace {

// CPU us per displayed frame on the client.
double ClientCpuPerFrameUs(bool ilp, sim::Duration fb_per_byte) {
  sim::Simulator sim;
  drivers::PointToPointLink link(sim);
  const auto profile = drivers::DeviceProfile::DecT3();
  auto costs = sim::CostModel::Default1996();
  costs.fb_write_per_byte = fb_per_byte;

  core::PlexusHost server(sim, "server", costs, profile,
                          {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost client(sim, "client", costs, profile,
                          {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  server.AttachTo(link);
  client.AttachTo(link);
  server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  client.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);

  app::VideoConfig config;
  app::PlexusVideoServer video(server, config);
  app::PlexusVideoClient viewer(client, config.base_client_port, ilp);
  video.AddClient({net::Ipv4Address(10, 0, 0, 2), config.base_client_port});
  video.Start();
  sim.RunFor(sim::Duration::Millis(200));
  const auto before = client.host().cpu().busy_total();
  const auto frames_before = viewer.frames_displayed();
  sim.RunFor(sim::Duration::Seconds(2));
  video.Stop();
  const double frames = static_cast<double>(viewer.frames_displayed() - frames_before);
  if (frames <= 0) return -1;
  return (client.host().cpu().busy_total() - before).us() / frames;
}

}  // namespace

int main() {
  const auto sfb = sim::Duration::Nanos(20);   // 1996 SFB framebuffer
  const auto j300 = sim::Duration::Nanos(3);   // "better video hardware"

  std::printf("Ablation: integrated layer processing on the video client\n");
  std::printf("(client CPU per 12.5KB displayed frame, T3 network)\n\n");
  std::printf("%-28s %14s %14s %10s\n", "framebuffer", "two-pass (us)", "ILP (us)", "saved");

  const double sfb_two = ClientCpuPerFrameUs(false, sfb);
  const double sfb_ilp = ClientCpuPerFrameUs(true, sfb);
  const double j300_two = ClientCpuPerFrameUs(false, j300);
  const double j300_ilp = ClientCpuPerFrameUs(true, j300);

  std::printf("%-28s %14.1f %14.1f %9.1f%%\n", "SFB (1996, 20ns/B)", sfb_two, sfb_ilp,
              (sfb_two - sfb_ilp) / sfb_two * 100);
  std::printf("%-28s %14.1f %14.1f %9.1f%%\n", "J300-class (3ns/B)", j300_two, j300_ilp,
              (j300_two - j300_ilp) / j300_two * 100);

  std::printf("\nshape: ILP savings grow once the framebuffer stops dominating: %s\n",
              ((j300_two - j300_ilp) / j300_two > (sfb_two - sfb_ilp) / sfb_two) ? "HOLDS"
                                                                                 : "VIOLATED");
  std::printf("(the paper's prediction about the DEC J300 — protocol processing becomes\n"
              " the bottleneck when display hardware improves)\n");
  return 0;
}
