// Microbenchmark for the allocation tentpole: slab vs operator new/delete
// ns/op at the engine's hot object sizes — simulator/timer events (SmallFn
// slots), mbuf headers, and mbuf segment bodies — plus the steady-state
// alloc/free churn pattern the packet path actually exhibits (LIFO reuse at
// a stable working-set depth, not malloc's random-lifetime mix).
//
// Also reports SmallFnHeapFallbacks: the engine-wide count of EventFn/Task
// captures that spilled to the heap. The inline-capture budget is part of
// the fast path's contract — a nonzero count after a representative run
// means a capture outgrew its SmallFn and silently re-introduced a
// per-event allocation.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "net/mbuf.h"
#include "sim/slab.h"
#include "sim/small_fn.h"

namespace {

// Steady-state churn: fill to `depth` outstanding blocks, then alternate
// free-oldest/alloc-new for `ops` operations. Returns ns per alloc+free
// pair. Best of `trials`.
template <typename AllocFn, typename FreeFn>
double ChurnNsPerPair(AllocFn alloc, FreeFn dealloc, int depth, int ops,
                      int trials = 5) {
  double best = 1e100;
  for (int t = 0; t < trials; ++t) {
    std::vector<void*> live(static_cast<std::size_t>(depth));
    for (auto& p : live) p = alloc();
    std::size_t slot = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < ops; ++i) {
      dealloc(live[slot]);
      live[slot] = alloc();
      slot = (slot + 1) % live.size();
    }
    const auto stop = std::chrono::steady_clock::now();
    for (void* p : live) dealloc(p);
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count()) /
        ops;
    if (ns < best) best = ns;
  }
  return best;
}

struct SizeCase {
  const char* name;
  std::size_t bytes;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  bench::JsonReporter reporter;

  // The three populations the slabs serve: a scheduler event slot (SmallFn
  // payload + links), an mbuf header, and the dominant segment body classes
  // (ACK/control-sized and full headroom+MSS-sized).
  const SizeCase cases[] = {
      {"event_node", 64},
      {"mbuf_hdr", sizeof(net::Mbuf)},
      {"seg_small", 192},
      {"seg_full", 2432},
  };
  constexpr int kDepth = 4096;  // packets + timers in flight at 10k conns
  constexpr int kOps = 500000;

  std::printf("allocation: slab vs operator new/delete, steady-state churn\n");
  std::printf("(depth %d outstanding, %d alloc/free pairs)\n\n", kDepth, kOps);
  std::printf("  %10s %6s | %10s %10s %8s\n", "object", "bytes", "new ns/op",
              "slab ns/op", "speedup");

  for (const auto& c : cases) {
    const double heap_ns = ChurnNsPerPair(
        [&] { return ::operator new(c.bytes); },
        [](void* p) { ::operator delete(p); }, kDepth, kOps);

    sim::BlockSlab slab(std::string("bench.") + c.name, c.bytes);
    const double slab_ns =
        ChurnNsPerPair([&] { return slab.Alloc(); },
                       [&](void* p) { slab.Free(p); }, kDepth, kOps);

    std::printf("  %10s %6zu | %10.1f %10.1f %7.2fx\n", c.name, c.bytes,
                heap_ns, slab_ns, heap_ns / slab_ns);

    for (const bool use_slab : {false, true}) {
      bench::BenchRecord r;
      r.experiment = "micro_alloc";
      r.device = "wall-clock";
      r.system = use_slab ? "slab" : "new_delete";
      r.metric = std::string("churn_") + c.name;
      r.unit = "ns/op";
      r.measured = use_slab ? slab_ns : heap_ns;
      r.paper_expected = "n/a (allocator ablation)";
      r.metrics_json = "{\"bytes\":" + std::to_string(c.bytes) +
                       ",\"depth\":" + std::to_string(kDepth) + "}";
      reporter.Add(std::move(r));
    }
  }

  // Inline-capture contract: nothing in this process has scheduled events,
  // but the counter is global and monotonic, so record it for the artifact
  // and let scale/web benches assert their own runs stay at zero.
  const std::uint64_t fallbacks = sim::SmallFnHeapFallbacks();
  std::printf("\n  SmallFn heap fallbacks this process: %llu\n",
              static_cast<unsigned long long>(fallbacks));
  {
    bench::BenchRecord r;
    r.experiment = "micro_alloc";
    r.device = "wall-clock";
    r.system = "smallfn";
    r.metric = "heap_fallbacks";
    r.unit = "count";
    r.measured = static_cast<double>(fallbacks);
    r.paper_expected = "0 (all hot captures inline)";
    reporter.Add(std::move(r));
  }

  int rc = 0;
  if (!json_path.empty() && !reporter.WriteTo(json_path)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
    rc = 1;
  }
  return rc;
}
