// Shared measurement harness for the paper-reproduction benchmarks.
//
// Each function builds a fresh two- or three-host simulated network, runs
// the workload, and returns the metric the paper reports. Everything is
// deterministic; "measurement" means reading the virtual clock / CPU
// accounting, not wall time.
#ifndef PLEXUS_BENCH_BENCH_COMMON_H_
#define PLEXUS_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/plexus.h"
#include "drivers/device_profile.h"
#include "sim/cost_model.h"

namespace bench {

// --- observability capture -------------------------------------------------------

// Optional in/out argument for the measurement functions below. Tracing
// never perturbs the virtual clock, so a traced run measures exactly the
// same numbers as an untraced one; it only adds the Chrome trace and the
// per-category CPU breakdown to the capture.
struct RunObservability {
  bool enable_tracing = false;        // in: switch the simulator's tracer on
  std::string metrics_json;           // out: {"a":{...},"b":{...}} per-host registry
  std::string charge_breakdown_json;  // out: per-category virtual-ns ledger
  std::string chrome_trace_json;      // out: chrome://tracing events (traced runs)
};

// --- Figure 5: UDP round-trip latency ------------------------------------------

// Application-to-application RTT for `payload` bytes over `profile`, with
// the application as an in-kernel Plexus extension.
double PlexusUdpRttUs(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                      core::HandlerMode mode, std::size_t payload = 8, int pings = 16,
                      RunObservability* obs = nullptr);

// Same workload through the monolithic baseline's sockets.
double OsUdpRttUs(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                  std::size_t payload = 8, int pings = 16, RunObservability* obs = nullptr);

// "the minimal round trip time using our hardware as measured between the
// device drivers": raw frame echo at interrupt level, no protocol stack.
double DriverUdpRttUs(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                      std::size_t payload = 8, int pings = 16);

// --- Section 4.2: TCP throughput -----------------------------------------------

double PlexusTcpThroughputMbps(const drivers::DeviceProfile& profile,
                               const sim::CostModel& costs,
                               std::size_t transfer_bytes = 4 * 1024 * 1024,
                               RunObservability* obs = nullptr);

double OsTcpThroughputMbps(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                           std::size_t transfer_bytes = 4 * 1024 * 1024,
                           RunObservability* obs = nullptr);

// Driver-to-driver blast (the paper's ~53 Mb/s reliable ceiling on ATM).
double DriverThroughputMbps(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                            std::size_t transfer_bytes = 4 * 1024 * 1024);

// --- Figure 6: video server CPU utilization -------------------------------------

struct VideoCpuPoint {
  int streams;
  double utilization;    // 0..1
  bool net_saturated;    // offered load >= link rate
};
VideoCpuPoint VideoServerCpu(bool plexus, int streams, const sim::CostModel& costs);

// --- Figure 7: forwarding latency ------------------------------------------------

struct ForwardingResult {
  double connect_us;        // client SYN -> established (through the middle).
                            // NB: the user-level splice "accepts" locally, so
                            // its connect time does not prove backend
                            // reachability (the semantics the paper says it
                            // violates).
  double request_rtt_us;    // small request/response round trip
  double first_response_us; // connect start -> first byte back from backend
};
ForwardingResult PlexusForwarding(const sim::CostModel& costs);
ForwardingResult DuForwarding(const sim::CostModel& costs);

// --- machine-readable output ------------------------------------------------------

// One measured cell of a paper table/figure: what the paper printed next to
// what this reproduction measured, plus optional captured observability.
struct BenchRecord {
  std::string experiment;      // e.g. "fig5_udp_rtt"
  std::string device;          // device profile name
  std::string system;          // e.g. "plexus-interrupt", "digital-unix"
  std::string metric;          // e.g. "rtt", "throughput"
  std::string unit;            // e.g. "us", "Mb/s"
  double measured = 0;
  std::string paper_expected;  // verbatim from the paper ("<600", "8.9", ...)
  std::string metrics_json;            // raw JSON, "" = not captured
  std::string charge_breakdown_json;   // raw JSON, "" = not captured
};

// Accumulates records and writes
// {"schema":"plexus-bench-v1","meta":{...},"records":[...]}.
// The meta block carries run provenance — wall-clock duration since the
// reporter was constructed, host OS/arch/cpu info, and the git SHA from
// PLEXUS_GIT_SHA (scripts/bench.sh exports it) — so a checked-in baseline
// records where its numbers came from. Everything under "records" stays
// deterministic: records in Add order, doubles printed with a fixed format,
// captured JSON embedded verbatim. Comparators (scripts/bench_compare.py,
// byte-identity tests) look only at "records".
class JsonReporter {
 public:
  JsonReporter() : wall_start_(std::chrono::steady_clock::now()) {}
  void Add(BenchRecord r) { records_.push_back(std::move(r)); }
  std::string ToJson() const;
  bool WriteTo(const std::string& path) const;
  std::size_t size() const { return records_.size(); }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::vector<BenchRecord> records_;
};

// Returns the operand following `flag` in argv ("" if absent): the benches
// take `--json <path>` and `--trace <path>`.
std::string ArgAfter(int argc, char** argv, const std::string& flag);

// --- table formatting -------------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, double measured, const char* unit,
                     const char* paper = nullptr) {
  if (paper != nullptr) {
    std::printf("  %-44s %10.1f %-6s (paper: %s)\n", label.c_str(), measured, unit, paper);
  } else {
    std::printf("  %-44s %10.1f %-6s\n", label.c_str(), measured, unit);
  }
}

}  // namespace bench

#endif  // PLEXUS_BENCH_BENCH_COMMON_H_
