// Overload sweep (not a paper figure): goodput vs offered load from 0.1x to
// 10x CPU capacity, with and without the receive-overload defenses (finite
// rx ring + interrupt->poll switch + bounded deferred queue + bounded mbuf
// pool). The protected thread-mode host must degrade gracefully — goodput at
// 10x stays within 40% of peak — where the unprotected configuration
// livelocks (all CPU in rx interrupts and spawned-but-never-run threads).
//
// Flags:
//   --json <path>   write every sweep point as plexus-bench-v1 JSON
//
// Exit gates (non-zero exit on failure; scripts/check.sh runs this):
//   * protected goodput at 10x >= 60% of protected peak goodput
//   * interrupt->poll transitions occur under saturation and appear in the
//     trace ("nic.poll.enter")
//   * the server's mbuf pool drains to zero after every run (no leaks)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "drivers/medium.h"
#include "net/checksum.h"
#include "net/mbuf_pool.h"
#include "proto/http.h"
#include "sim/batch.h"

namespace {

constexpr std::uint16_t kEchoPort = 7;
constexpr std::uint16_t kFloodPort = 9;
constexpr std::size_t kPayloadBytes = 64;

const net::Ipv4Address kServerIp(10, 0, 0, 1);
const net::Ipv4Address kClientIp(10, 0, 0, 2);
const net::MacAddress kServerMac = net::MacAddress::FromId(1);
const net::MacAddress kClientMac = net::MacAddress::FromId(2);

// A fully framed Ethernet+IPv4+UDP packet addressed to the server, as the
// load generator would put it on the wire. The UDP checksum is left 0 ("not
// computed"), the standard checksum-off option; the IP header checksum is
// valid.
std::shared_ptr<net::Mbuf> CraftUdpFrame(std::uint16_t dst_port) {
  std::vector<std::byte> bytes(sizeof(net::EthernetHeader) + sizeof(net::Ipv4Header) +
                               sizeof(net::UdpHeader) + kPayloadBytes);

  net::EthernetHeader eth;
  eth.dst = kServerMac;
  eth.src = kClientMac;
  eth.type = net::ethertype::kIpv4;

  net::Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(sizeof(net::Ipv4Header) +
                                               sizeof(net::UdpHeader) + kPayloadBytes);
  ip.protocol = net::ipproto::kUdp;
  ip.src = kClientIp;
  ip.dst = kServerIp;
  ip.checksum = 0;
  std::byte raw[sizeof(net::Ipv4Header)];
  std::memcpy(raw, &ip, sizeof(ip));
  ip.checksum = net::Checksum({raw, sizeof(raw)});

  net::UdpHeader udp;
  udp.src_port = 4000;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(sizeof(net::UdpHeader) + kPayloadBytes);
  udp.checksum = 0;

  std::memcpy(bytes.data(), &eth, sizeof(eth));
  std::memcpy(bytes.data() + sizeof(eth), &ip, sizeof(ip));
  std::memcpy(bytes.data() + sizeof(eth) + sizeof(ip), &udp, sizeof(udp));
  for (std::size_t i = 0; i < kPayloadBytes; ++i) {
    bytes[sizeof(eth) + sizeof(ip) + sizeof(udp) + i] =
        std::byte{static_cast<unsigned char>(i & 0xff)};
  }
  auto m = net::Mbuf::FromBytes(bytes);
  return std::shared_ptr<net::Mbuf>(m.release());
}

// The device under test: a fast-driver Ethernet whose wire is deliberately
// NOT the bottleneck (the CPU is), so offered load is set purely by the
// injection interval.
drivers::DeviceProfile SweepProfile(bool protection) {
  auto p = drivers::DeviceProfile::Ethernet10FastDriver();
  p.name = protection ? "ethernet-fast-protected" : "ethernet-fast-unprotected";
  p.bandwidth_bps = 1'000'000'000;
  p.inter_frame_gap = sim::Duration::Zero();
  p.propagation = sim::Duration::Micros(1);
  if (protection) {
    p.rx_ring_depth = 256;
    p.poll_threshold = 0.25;
    p.poll_window = sim::Duration::Millis(1);
    p.poll_quota = 8;
  } else {
    // The stock-driver structure the paper inherits: unbounded ring, always
    // interrupt-driven.
    p.rx_ring_depth = 0;
    p.poll_threshold = 1.0;
  }
  return p;
}

struct UdpRunResult {
  double goodput_pps = 0;
  drivers::Nic::Stats nic;
  std::uint64_t shed = 0;
  std::uint64_t pool_exhaustions = 0;
  std::size_t pool_in_use_after = 0;
  bool poll_enter_traced = false;
  std::string metrics_json;
};

// Injects `offered_pps` of UDP echo traffic at the server's NIC for
// `window` and measures echoed packets at a promiscuous sink tap.
UdpRunResult RunUdpOverload(double offered_pps, sim::Duration window, bool protection,
                            bool traced) {
  sim::Simulator sim;
  if (traced) sim.tracer().SetEnabled(true);
  drivers::EthernetSegment segment(sim);
  const auto costs = sim::CostModel::Default1996();
  const auto profile = SweepProfile(protection);

  core::PlexusHost server(sim, "server", costs, profile, {kServerMac, kServerIp, 24},
                          core::HandlerMode::kThread);
  if (!protection) {
    // Effectively unbounded deferred queue: the backlog is the livelock.
    server.deferred_queue().set_config({1u << 30, 1u << 29});
  }
  server.AttachTo(segment);
  server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  server.arp().AddStatic(kClientIp, kClientMac);

  // The "client": a bare NIC tap that counts echo replies. Its own CPU never
  // bottlenecks (separate host).
  sim::Host sink_host(sim, "sink", costs);
  drivers::Nic sink(sink_host, profile, kClientMac);
  sink.AttachMedium(&segment);
  std::uint64_t echoes = 0;
  sink.SetReceiveCallback([&echoes](net::MbufPtr) { ++echoes; });

  auto epr = server.udp().CreateEndpoint(kEchoPort);
  if (!epr.ok()) return {};
  auto ep = epr.value();
  ep->set_checksum_enabled(false);
  auto install = ep->InstallReceiveHandler(
      [&server, &ep](const net::Mbuf& payload, const proto::UdpDatagram& info) {
        std::vector<std::byte> tmp(payload.PacketLength());
        payload.CopyOut(0, tmp);
        auto out = net::PoolFromBytes(server.host().mbuf_pool(), tmp);
        if (out == nullptr) return;  // pool dry: the echo is dropped
        ep->Send(std::move(out), info.src_ip, info.src_port);
      });
  if (!install.ok()) return {};

  auto frame = CraftUdpFrame(kEchoPort);
  const auto start = sim::Duration::Millis(1);
  const double interval_s = 1.0 / offered_pps;
  const auto n = static_cast<std::size_t>(window.seconds() * offered_pps);
  for (std::size_t i = 0; i < n; ++i) {
    sim.Schedule(start + sim::Duration::SecondsF(static_cast<double>(i) * interval_s),
                 [&server, frame] {
                   server.nic().DeliverFromWire(net::MbufPtr(frame->ShareClone()),
                                                /*check_address=*/true);
                 });
  }

  // Goodput counts only echoes that made it out DURING the offered-load
  // window — a backlog serviced after the load stops is latency, not
  // goodput (and is exactly how an unbounded queue fakes throughput).
  std::uint64_t echoes_in_window = 0;
  sim.Schedule(start + window, [&echoes, &echoes_in_window] { echoes_in_window = echoes; });

  // Then run to quiescence well past the window so every queue drains (the
  // unprotected configurations accumulate seconds of backlog at 10x — that
  // backlog draining to zero is itself part of the no-leak property).
  sim.RunFor(start + window + sim::Duration::Seconds(30));

  UdpRunResult r;
  r.goodput_pps = static_cast<double>(echoes_in_window) / window.seconds();
  r.nic = server.nic().stats();
  r.shed = server.host().metrics().counter("spin.deferred_shed").value();
  r.pool_exhaustions = server.mbuf_pool().exhaustions();
  r.pool_in_use_after = server.mbuf_pool().in_use();
  if (traced) {
    r.poll_enter_traced =
        sim.tracer().ExportChromeJson().find("nic.poll.enter") != std::string::npos;
  }
  r.metrics_json = "{\"server\":" + server.host().metrics().ToJson() + "}";
  return r;
}

// Calibrates the echo capacity of the protected server: CPU busy time per
// echoed packet at a trivially low offered load.
double EchoCapacityPps() {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto costs = sim::CostModel::Default1996();
  const auto profile = SweepProfile(/*protection=*/true);
  core::PlexusHost server(sim, "server", costs, profile, {kServerMac, kServerIp, 24},
                          core::HandlerMode::kThread);
  server.AttachTo(segment);
  server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  server.arp().AddStatic(kClientIp, kClientMac);
  sim::Host sink_host(sim, "sink", costs);
  drivers::Nic sink(sink_host, profile, kClientMac);
  sink.AttachMedium(&segment);
  std::uint64_t echoes = 0;
  sink.SetReceiveCallback([&echoes](net::MbufPtr) { ++echoes; });

  auto ep = server.udp().CreateEndpoint(kEchoPort).value();
  ep->set_checksum_enabled(false);
  auto install = ep->InstallReceiveHandler(
      [&server, &ep](const net::Mbuf& payload, const proto::UdpDatagram& info) {
        std::vector<std::byte> tmp(payload.PacketLength());
        payload.CopyOut(0, tmp);
        auto out = net::PoolFromBytes(server.host().mbuf_pool(), tmp);
        if (out == nullptr) return;
        ep->Send(std::move(out), info.src_ip, info.src_port);
      });
  if (!install.ok()) return 0;

  auto frame = CraftUdpFrame(kEchoPort);
  constexpr int kProbes = 64;
  for (int i = 0; i < kProbes; ++i) {
    sim.Schedule(sim::Duration::Millis(1 + 2 * i), [&server, frame] {
      server.nic().DeliverFromWire(net::MbufPtr(frame->ShareClone()), true);
    });
  }
  sim.RunFor(sim::Duration::Seconds(2));
  if (echoes == 0) return 0;
  const double busy_per_echo =
      server.host().cpu().busy_total().seconds() / static_cast<double>(echoes);
  return 1.0 / busy_per_echo;
}

struct HttpRunResult {
  std::uint64_t responses = 0;
  drivers::Nic::Stats nic;
  std::size_t pool_in_use_after = 0;
};

// An HTTP server answering small GETs while a UDP flood of
// `flood_multiplier` x capacity hammers the same NIC. With the defenses on,
// request/response progress must continue under the flood.
HttpRunResult RunHttpUnderFlood(double flood_pps, sim::Duration window) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto costs = sim::CostModel::Default1996();
  const auto profile = SweepProfile(/*protection=*/true);

  core::PlexusHost server(sim, "server", costs, profile, {kServerMac, kServerIp, 24},
                          core::HandlerMode::kThread);
  core::PlexusHost client(sim, "client", costs, SweepProfile(true),
                          {kClientMac, kClientIp, 24}, core::HandlerMode::kThread);
  server.AttachTo(segment);
  client.AttachTo(segment);
  server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  client.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  server.arp().AddStatic(kClientIp, kClientMac);
  client.arp().AddStatic(kServerIp, kServerMac);

  // The flood lands on a bound-but-silent port: it must be absorbed (or
  // shed) without ICMP backscatter amplifying the load.
  auto flood_ep = server.udp().CreateEndpoint(kFloodPort).value();
  auto flood_install = flood_ep->InstallReceiveHandler(
      [](const net::Mbuf&, const proto::UdpDatagram&) {});
  if (!flood_install.ok()) return {};

  const std::string body(256, 'w');
  std::vector<std::unique_ptr<proto::HttpServerConnection>> conns;
  server.tcp().Listen(80, [&](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
    conns.push_back(std::make_unique<proto::HttpServerConnection>(
        *ep, [&](const std::string&) {
          server.host().Charge(server.host().costs().http_parse);
          return std::optional(body);
        }));
  });

  HttpRunResult r;
  bool stop = false;
  std::shared_ptr<core::PlexusTcpEndpoint> conn;
  std::unique_ptr<proto::HttpClient> http;
  std::function<void()> next_get = [&] {
    if (stop) return;
    conn = client.tcp().Connect(kServerIp, 80);
    http = std::make_unique<proto::HttpClient>(
        *conn, [&](const proto::HttpClient::Response& resp) {
          if (resp.status == 200) ++r.responses;
          client.Run([&] { next_get(); });  // back-to-back sequential GETs
        });
    conn->SetOnEstablished([&] { http->Get("/page"); });
  };
  client.Run([&] { next_get(); });

  auto frame = CraftUdpFrame(kFloodPort);
  const auto start = sim::Duration::Millis(1);
  const double interval_s = 1.0 / flood_pps;
  const auto n = static_cast<std::size_t>(window.seconds() * flood_pps);
  for (std::size_t i = 0; i < n; ++i) {
    sim.Schedule(start + sim::Duration::SecondsF(static_cast<double>(i) * interval_s),
                 [&server, frame] {
                   server.nic().DeliverFromWire(net::MbufPtr(frame->ShareClone()), true);
                 });
  }

  sim.Schedule(start + window, [&stop] { stop = true; });
  sim.RunFor(start + window);
  const std::uint64_t during_flood = r.responses;
  sim.RunFor(sim::Duration::Seconds(30));  // drain the backlog + close streams
  r.responses = during_flood;
  r.nic = server.nic().stats();
  r.pool_in_use_after = server.mbuf_pool().in_use();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  bench::JsonReporter reporter;
  bool gates_ok = true;
  auto gate = [&gates_ok](bool ok, const char* what) {
    std::printf("  GATE %-52s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) gates_ok = false;
  };

  const double capacity = EchoCapacityPps();
  std::printf("Overload sweep: UDP echo, thread-mode Plexus server\n");
  std::printf("calibrated echo capacity: %.0f pps (CPU-bound)\n", capacity);
  if (capacity <= 0) {
    std::fprintf(stderr, "calibration failed\n");
    return 1;
  }

  const auto window = sim::Duration::Millis(500);
  const double multipliers[] = {0.1, 0.2, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0};

  std::printf("\n%-10s %14s %14s %12s %12s %10s %10s\n", "load", "protected pps",
              "unprot pps", "ring drops", "shed", "polls", "pool left");
  double peak = 0, at_10x = 0, unprot_at_10x = 0, unprot_peak = 0;
  std::uint64_t total_poll_entries = 0;
  bool traced_transition = false;
  bool pool_leak = false;
  for (const double m : multipliers) {
    const double offered = m * capacity;
    // The saturated runs are the interesting traces; tracing never perturbs
    // virtual time, so tracing one run per point is free accuracy-wise but
    // memory-heavy — trace only the deepest overload point.
    const bool traced = m == 10.0;
    const UdpRunResult prot = RunUdpOverload(offered, window, /*protection=*/true, traced);
    const UdpRunResult unprot = RunUdpOverload(offered, window, /*protection=*/false, false);
    std::printf("%8.1fx %14.0f %14.0f %12llu %12llu %10llu %10zu\n", m, prot.goodput_pps,
                unprot.goodput_pps,
                static_cast<unsigned long long>(prot.nic.rx_ring_drops),
                static_cast<unsigned long long>(prot.shed),
                static_cast<unsigned long long>(prot.nic.poll_entries),
                prot.pool_in_use_after + unprot.pool_in_use_after);
    peak = std::max(peak, prot.goodput_pps);
    unprot_peak = std::max(unprot_peak, unprot.goodput_pps);
    if (m == 10.0) {
      at_10x = prot.goodput_pps;
      unprot_at_10x = unprot.goodput_pps;
      traced_transition = prot.poll_enter_traced;
    }
    total_poll_entries += prot.nic.poll_entries;
    pool_leak = pool_leak || prot.pool_in_use_after != 0 || unprot.pool_in_use_after != 0;

    bench::BenchRecord rec;
    rec.experiment = "overload_udp_sweep";
    rec.device = "ethernet-fast";
    rec.system = "plexus-protected";
    rec.metric = "goodput_at_" + std::to_string(m) + "x";
    rec.unit = "pps";
    rec.measured = prot.goodput_pps;
    rec.paper_expected = "graceful degradation";
    rec.metrics_json = prot.metrics_json;
    reporter.Add(std::move(rec));
    bench::BenchRecord urec;
    urec.experiment = "overload_udp_sweep";
    urec.device = "ethernet-fast";
    urec.system = "plexus-unprotected";
    urec.metric = "goodput_at_" + std::to_string(m) + "x";
    urec.unit = "pps";
    urec.measured = unprot.goodput_pps;
    urec.paper_expected = "receive livelock";
    reporter.Add(std::move(urec));
  }

  std::printf("\npeak %.0f pps; protected at 10x: %.0f pps (%.0f%% of peak); "
              "unprotected at 10x: %.0f pps (%.0f%% of its peak)\n",
              peak, at_10x, peak > 0 ? 100.0 * at_10x / peak : 0, unprot_at_10x,
              unprot_peak > 0 ? 100.0 * unprot_at_10x / unprot_peak : 0);

  std::printf("\nHTTP under UDP flood (protected server)\n");
  const double flood_multipliers[] = {0.0, 5.0, 10.0};
  std::uint64_t http_at_10x = 0;
  for (const double m : flood_multipliers) {
    const double flood = m * capacity;
    const HttpRunResult h =
        m == 0.0 ? RunHttpUnderFlood(1.0, window) : RunHttpUnderFlood(flood, window);
    std::printf("  flood %4.1fx: %llu responses in %.0f ms (ring drops %llu, polls %llu)\n",
                m, static_cast<unsigned long long>(h.responses), window.seconds() * 1e3,
                static_cast<unsigned long long>(h.nic.rx_ring_drops),
                static_cast<unsigned long long>(h.nic.poll_entries));
    if (m == 10.0) http_at_10x = h.responses;
    pool_leak = pool_leak || h.pool_in_use_after != 0;

    bench::BenchRecord rec;
    rec.experiment = "overload_http_flood";
    rec.device = "ethernet-fast";
    rec.system = "plexus-protected";
    rec.metric = "responses_at_" + std::to_string(m) + "x_flood";
    rec.unit = "count";
    rec.measured = static_cast<double>(h.responses);
    rec.paper_expected = "progress under flood";
    reporter.Add(std::move(rec));
  }

  std::printf("\n");
  gate(at_10x >= 0.6 * peak, "protected goodput at 10x >= 60% of peak");
  gate(total_poll_entries > 0, "interrupt->poll transitions occur under saturation");
  gate(traced_transition, "poll transition appears in the trace (nic.poll.enter)");
  gate(!pool_leak, "mbuf pool drains to zero after every run");
  gate(http_at_10x > 0, "HTTP makes progress under a 10x flood");
  // Absolute plateau: per-packet processing tops out near 6.2k pps on this
  // cost model; clearing 6.5k requires the burst amortization (one batch
  // hop + per-frame residual) to actually reach the deferred queue. Skipped
  // under PLEXUS_BATCH=off, where ~6.2k is the correct ceiling.
  if (sim::BatchConfig::enabled()) {
    gate(at_10x > 6500.0, "batched plateau clears the per-packet ~6.2k pps");
  }

  if (!json_path.empty()) {
    if (!reporter.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %zu records: %s\n", reporter.size(), json_path.c_str());
  }
  return gates_ok ? 0 : 1;
}
