// Figure 7: "TCP redirection latency using Plexus and DIGITAL UNIX. The
// DIGITAL UNIX implementation runs at user-level and is unable to respect
// end-to-end TCP semantics." Per packet, the user-level splice pays two
// full stack traversals and two user/kernel boundary copies; the Plexus
// forwarder rewrites addresses inside the protocol graph.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  const auto costs = sim::CostModel::Default1996();

  std::printf("Figure 7: TCP redirection latency through a forwarding host (Ethernet)\n");

  const auto plexus = bench::PlexusForwarding(costs);
  const auto du = bench::DuForwarding(costs);

  bench::PrintHeader("connection establishment, client's view");
  bench::PrintRow("Plexus: SYN traverses forwarder (end-to-end)", plexus.connect_us, "us");
  bench::PrintRow("DU splice: accept is LOCAL to the forwarder", du.connect_us, "us");
  std::printf("  (the splice's accept proves nothing about the backend — the\n"
              "   end-to-end semantics violation the paper describes)\n");

  bench::PrintHeader("connect -> first backend response");
  bench::PrintRow("Plexus in-kernel forwarder", plexus.first_response_us, "us");
  bench::PrintRow("DIGITAL UNIX user-level splice", du.first_response_us, "us");

  bench::PrintHeader("8-byte request/response round trip through the forwarder");
  bench::PrintRow("Plexus in-kernel forwarder", plexus.request_rtt_us, "us");
  bench::PrintRow("DIGITAL UNIX user-level splice", du.request_rtt_us, "us");
  std::printf("\n  splice/plexus latency ratio: %.2fx (paper: substantially slower)\n",
              du.request_rtt_us / plexus.request_rtt_us);
  std::printf("  shape: Plexus faster on steady-state RTT and first response: %s\n",
              (plexus.request_rtt_us < du.request_rtt_us &&
               plexus.first_response_us < du.first_response_us)
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
