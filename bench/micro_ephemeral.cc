// Section 3.3: interrupt-level (EPHEMERAL) vs thread-level handler latency,
// demonstrated with the active-message workload the paper uses, plus the
// time-limit termination machinery.
#include <cstdio>

#include "bench/bench_common.h"
#include "drivers/medium.h"
#include "spin/event.h"

namespace {

// One-way active-message latency with the handler at interrupt level.
double ActiveMessageLatencyUs(core::HandlerMode mode) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  const auto costs = sim::CostModel::Default1996();
  core::PlexusHost a(sim, "a", costs, profile,
                     {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24}, mode);
  core::PlexusHost b(sim, "b", costs, profile,
                     {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24}, mode);
  a.AttachTo(segment);
  b.AttachTo(segment);

  double total = 0;
  int count = 0;
  sim::TimePoint sent_at;
  std::function<void()> send_msg;
  // Ping-pong: handler 1 on b replies; handler 2 on a completes the RTT.
  b.active_messages().RegisterHandler(
      1, [&](net::MacAddress from, std::uint32_t a0, std::uint32_t, std::span<const std::byte>) {
        b.active_messages().Send(from, 2, a0, 0);
      });
  a.active_messages().RegisterHandler(
      2, [&](net::MacAddress, std::uint32_t, std::uint32_t, std::span<const std::byte>) {
        total += (sim.Now() - sent_at).us();
        if (++count < 16) send_msg();
      });
  send_msg = [&] {
    a.Run([&] {
      sent_at = sim.Now();
      a.active_messages().Send(net::MacAddress::FromId(2), 1, 42, 0);
    });
  };
  send_msg();
  sim.RunFor(sim::Duration::Seconds(10));
  return count > 0 ? total / count : -1;
}

}  // namespace

int main() {
  std::printf("Section 3.3: EPHEMERAL interrupt-level handlers vs thread handlers\n");

  const double at_interrupt = ActiveMessageLatencyUs(core::HandlerMode::kInterrupt);
  const double in_thread = ActiveMessageLatencyUs(core::HandlerMode::kThread);
  bench::PrintHeader("active-message round trip (Ethernet)");
  bench::PrintRow("handler at interrupt level (EPHEMERAL)", at_interrupt, "us");
  bench::PrintRow("handler in a spawned thread", in_thread, "us");
  std::printf("  interrupt-level advantage: %.1f us per RTT (paper: \"unnecessarily large\n"
              "  latency\" for threaded handlers)\n",
              in_thread - at_interrupt);

  // Time-limit termination: an over-budget handler is cut off, charged only
  // its budget, and its side effects abandoned.
  bench::PrintHeader("over-budget handler termination");
  spin::Event<int> ev("Bench.Budget");
  int ran = 0, terminated = 0;
  spin::HandlerOptions opts;
  opts.ephemeral = true;
  opts.declared_cost = sim::Duration::Micros(500);
  opts.time_limit = sim::Duration::Micros(50);
  opts.on_terminated = [&] { ++terminated; };
  (void)ev.Install([&](int) { ++ran; }, nullptr, opts);
  for (int i = 0; i < 1000; ++i) ev.Raise(i);
  std::printf("  1000 raises of a 500us handler under a 50us budget: ran=%d terminated=%d\n",
              ran, terminated);
  std::printf("  shape: interrupt < thread and budget enforced: %s\n",
              (at_interrupt < in_thread && ran == 0 && terminated == 1000) ? "HOLDS"
                                                                           : "VIOLATED");
  return 0;
}
