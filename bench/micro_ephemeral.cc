// Section 3.3: interrupt-level (EPHEMERAL) vs thread-level handler latency,
// demonstrated with the active-message workload the paper uses, plus the
// time-limit termination machinery.
#include <cstdio>
#include <stdexcept>

#include "bench/bench_common.h"
#include "drivers/medium.h"
#include "sim/host.h"
#include "spin/dispatcher.h"
#include "spin/event.h"

namespace {

// One-way active-message latency with the handler at interrupt level.
double ActiveMessageLatencyUs(core::HandlerMode mode) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  const auto costs = sim::CostModel::Default1996();
  core::PlexusHost a(sim, "a", costs, profile,
                     {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24}, mode);
  core::PlexusHost b(sim, "b", costs, profile,
                     {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24}, mode);
  a.AttachTo(segment);
  b.AttachTo(segment);

  double total = 0;
  int count = 0;
  sim::TimePoint sent_at;
  std::function<void()> send_msg;
  // Ping-pong: handler 1 on b replies; handler 2 on a completes the RTT.
  b.active_messages().RegisterHandler(
      1, [&](net::MacAddress from, std::uint32_t a0, std::uint32_t, std::span<const std::byte>) {
        b.active_messages().Send(from, 2, a0, 0);
      });
  a.active_messages().RegisterHandler(
      2, [&](net::MacAddress, std::uint32_t, std::uint32_t, std::span<const std::byte>) {
        total += (sim.Now() - sent_at).us();
        if (++count < 16) send_msg();
      });
  send_msg = [&] {
    a.Run([&] {
      sent_at = sim.Now();
      a.active_messages().Send(net::MacAddress::FromId(2), 1, 42, 0);
    });
  };
  send_msg();
  sim.RunFor(sim::Duration::Seconds(10));
  return count > 0 ? total / count : -1;
}

}  // namespace

int main() {
  std::printf("Section 3.3: EPHEMERAL interrupt-level handlers vs thread handlers\n");

  const double at_interrupt = ActiveMessageLatencyUs(core::HandlerMode::kInterrupt);
  const double in_thread = ActiveMessageLatencyUs(core::HandlerMode::kThread);
  bench::PrintHeader("active-message round trip (Ethernet)");
  bench::PrintRow("handler at interrupt level (EPHEMERAL)", at_interrupt, "us");
  bench::PrintRow("handler in a spawned thread", in_thread, "us");
  std::printf("  interrupt-level advantage: %.1f us per RTT (paper: \"unnecessarily large\n"
              "  latency\" for threaded handlers)\n",
              in_thread - at_interrupt);

  // Time-limit termination: an over-budget handler is cut off, charged only
  // its budget, and its side effects abandoned.
  bench::PrintHeader("over-budget handler termination");
  spin::Event<int> ev("Bench.Budget");
  int ran = 0, terminated = 0;
  spin::HandlerOptions opts;
  opts.ephemeral = true;
  opts.declared_cost = sim::Duration::Micros(500);
  opts.time_limit = sim::Duration::Micros(50);
  opts.on_terminated = [&] { ++terminated; };
  (void)ev.Install([&](int) { ++ran; }, nullptr, opts);
  for (int i = 0; i < 1000; ++i) ev.Raise(i);
  std::printf("  1000 raises of a 500us handler under a 50us budget: ran=%d terminated=%d\n",
              ran, terminated);
  std::printf("  shape: interrupt < thread and budget enforced: %s\n",
              (at_interrupt < in_thread && ran == 0 && terminated == 1000) ? "HOLDS"
                                                                           : "VIOLATED");

  // Fault containment: a storm of misbehaving handlers (one throws, one
  // burns CPU past its measured budget) next to a healthy one. The healthy
  // handler must see every raise, the offenders must be quarantined after
  // their strikes, and the CPU must be billed exactly dispatch + budget for
  // each measured termination — no runaway charging.
  bench::PrintHeader("fault containment under a misbehaving-extension storm");
  sim::Simulator fsim;
  sim::Host fhost(fsim, "bench", sim::CostModel::Default1996());
  spin::Dispatcher fdisp(&fhost);
  spin::Event<int> storm("Bench.FaultStorm", &fdisp);

  int healthy_runs = 0, burner_completed = 0;
  (void)storm.Install([&](int) { ++healthy_runs; });

  spin::HandlerOptions crasher;
  crasher.name = "crasher";
  crasher.fault.isolate = true;
  crasher.fault.max_strikes = 3;
  (void)storm.Install([](int) { throw std::runtime_error("storm bug"); }, nullptr, crasher);

  spin::HandlerOptions burner;
  burner.name = "burner";
  burner.ephemeral = true;
  burner.declared_cost = sim::Duration::Micros(5);
  burner.time_limit = sim::Duration::Micros(50);
  burner.fault.isolate = true;
  burner.fault.max_strikes = 3;
  (void)storm.Install(
      [&](int) {
        fhost.Charge(sim::Duration::Millis(1));  // way past the 50us budget
        ++burner_completed;                      // abandoned by the fence
      },
      nullptr, burner);

  constexpr int kRaises = 1000;
  fhost.Submit(sim::Priority::kKernel, [&] {
    for (int i = 0; i < kRaises; ++i) storm.Raise(i);
  });
  fsim.Run();

  const auto st = fdisp.stats();
  // Billing: every surviving dispatch costs event_dispatch; each of the 3
  // measured terminations additionally bills exactly the 50us budget.
  const auto expected_busy =
      sim::Duration::Nanos(fhost.costs().event_dispatch.ns() * (kRaises + 3 + 3)) +
      sim::Duration::Micros(50 * 3);
  std::printf("  %d raises: healthy=%d crasher faults=%llu burner terminations=%llu "
              "quarantines=%llu\n",
              kRaises, healthy_runs, static_cast<unsigned long long>(st.faults),
              static_cast<unsigned long long>(st.terminations),
              static_cast<unsigned long long>(st.quarantines));
  std::printf("  cpu billed %.1f us (expected %.1f us)\n", fhost.cpu().busy_total().us(),
              expected_busy.us());
  const bool contained = healthy_runs == kRaises && burner_completed == 0 && st.faults == 3 &&
                         st.terminations == 3 && st.quarantines == 2 &&
                         fhost.cpu().busy_total().ns() == expected_busy.ns();
  std::printf("  shape: healthy unaffected, offenders quarantined, billing exact: %s\n",
              contained ? "HOLDS" : "VIOLATED");
  return 0;
}
