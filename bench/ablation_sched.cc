// Ablation: scheduling interference — the paper's claim that placing the
// protocol "close to the network device ... simplifies process scheduling".
//
// A compute-bound background workload runs on the RECEIVING host. The
// monolithic baseline must schedule its user process to deliver each
// packet, so its receive latency queues behind the background slices; the
// Plexus handler runs at interrupt level and is immune.
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "drivers/medium.h"
#include "os/socket_host.h"
#include "os/sockets.h"
#include "sim/background_load.h"

namespace {

double PlexusRttWithLoad(double load) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  const auto costs = sim::CostModel::Default1996();
  core::PlexusHost a(sim, "a", costs, profile,
                     {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost b(sim, "b", costs, profile,
                     {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  a.AttachTo(segment);
  b.AttachTo(segment);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  sim::BackgroundLoad bg(b.host(), load);
  bg.Start();

  auto client = a.udp().CreateEndpoint(5000).value();
  auto server = b.udp().CreateEndpoint(7).value();
  spin::HandlerOptions opts;
  opts.ephemeral = true;
  (void)server->InstallReceiveHandler(
      [&](const net::Mbuf& p, const proto::UdpDatagram& info) {
        server->Send(p.DeepCopy(), info.src_ip, info.src_port);
      },
      opts);
  double total = 0;
  int count = 0;
  sim::TimePoint sent_at;
  std::function<void()> ping = [&] {
    a.Run([&] {
      sent_at = sim.Now();
      client->Send(net::Mbuf::FromString("12345678"), net::Ipv4Address(10, 0, 0, 2), 7);
    });
  };
  (void)client->InstallReceiveHandler(
      [&](const net::Mbuf&, const proto::UdpDatagram&) {
        if (count > 0) total += (sim.Now() - sent_at).us();
        if (++count < 33) ping();
      },
      opts);
  ping();
  sim.RunFor(sim::Duration::Seconds(20));
  return count > 1 ? total / (count - 1) : -1;
}

double DuRttWithLoad(double load) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  const auto costs = sim::CostModel::Default1996();
  os::SocketHost a(sim, "a", costs, profile,
                   {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  os::SocketHost b(sim, "b", costs, profile,
                   {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  a.AttachTo(segment);
  b.AttachTo(segment);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  sim::BackgroundLoad bg(b.host(), load);
  bg.Start();

  os::UdpSocket client(a, 5000);
  os::UdpSocket server(b, 7);
  server.SetOnDatagram([&](std::vector<std::byte> data, const proto::UdpDatagram& info) {
    server.SendTo(std::span<const std::byte>(data), info.src_ip, info.src_port);
  });
  double total = 0;
  int count = 0;
  sim::TimePoint sent_at;
  std::function<void()> ping = [&] {
    a.RunUser([&] {
      sent_at = sim.Now();
      client.SendTo("12345678", net::Ipv4Address(10, 0, 0, 2), 7);
    });
  };
  client.SetOnDatagram([&](std::vector<std::byte>, const proto::UdpDatagram&) {
    if (count > 0) total += (sim.Now() - sent_at).us();
    if (++count < 33) ping();
  });
  ping();
  sim.RunFor(sim::Duration::Seconds(20));
  return count > 1 ? total / (count - 1) : -1;
}

}  // namespace

int main() {
  std::printf("Ablation: receive latency under background CPU load on the server\n");
  std::printf("(the paper: in-kernel extensions \"simplify process scheduling\" —\n"
              " interrupt-level handlers do not wait for the run queue)\n\n");
  std::printf("%10s %18s %18s %12s\n", "bg load", "Plexus RTT (us)", "DU RTT (us)",
              "DU penalty");
  double plexus_0 = 0, plexus_75 = 0;
  bool holds = true;
  double du_prev = 0;
  for (double load : {0.0, 0.25, 0.5, 0.75}) {
    const double plexus = PlexusRttWithLoad(load);
    const double du = DuRttWithLoad(load);
    std::printf("%9.0f%% %18.1f %18.1f %+11.1f%%\n", load * 100, plexus, du,
                du_prev > 0 ? (du - du_prev) / du_prev * 100 : 0.0);
    if (load == 0.0) plexus_0 = plexus;
    if (load == 0.75) plexus_75 = plexus;
    if (du_prev > 0) holds = holds && du >= du_prev * 0.99;
    du_prev = du;
  }
  const double plexus_drift = (plexus_75 - plexus_0) / plexus_0;
  std::printf("\n  Plexus RTT drift across the load sweep: %.1f%% (interrupt immunity)\n",
              plexus_drift * 100);
  std::printf("  shape: DU latency grows with load, Plexus nearly flat: %s\n",
              (holds && plexus_drift < 0.10) ? "HOLDS" : "VIOLATED");
  return 0;
}
