// Connection-scale workload (not a paper figure): N concurrent TCP clients
// against the in-kernel Plexus web server — the "heavy traffic" regime of
// the paper's closing HTTP demo — under induced loss so retransmission
// timers genuinely arm, fire, and cancel.
//
// Every connection performs connect / HTTP GET / close. Induced frame loss
// forces RTO and delayed-ACK traffic, and every close parks a 2MSL timer, so
// the pending-timer population grows with N — exactly the load the
// hierarchical timing wheel (SchedulerImpl::kWheel) exists for. The bench
// runs each N under both scheduler implementations and reports wall-clock
// and simulated ns per connection plus the pending-timer high-water mark
// (sim.timer_pending_peak).
//
// The two implementations must also agree bit-for-bit on virtual time:
// identical (deadline, FIFO) firing order means the simulated completion
// time is the same number under heap and wheel. The bench exits non-zero if
// they diverge.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "drivers/medium.h"
#include "proto/http.h"
#include "sim/metrics.h"
#include "sim/profiler.h"

namespace {

struct ScaleResult {
  int completed = 0;       // responses with HTTP 200
  int finished = 0;        // connections that terminated at all
  double sim_ms = 0;       // virtual time until the last response
  double wall_ns_per_conn = 0;
  double sim_ns_per_conn = 0;
  std::int64_t timer_pending_peak = 0;
  std::uint64_t timer_schedules = 0;
  std::uint64_t timer_cancels = 0;
  std::uint64_t timer_fires = 0;
  // Wall-clock profiler coverage of the run loop (PLEXUS_PROFILE=1 only):
  // profiled self-time must account for nearly all of the loop's wall time.
  double run_loop_wall_ns = 0;
  double profiled_self_ns = 0;
};

ScaleResult RunScale(sim::SchedulerImpl impl, int n) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulator sim(impl);
  drivers::EthernetSegment segment(sim);
  drivers::Faults faults;
  faults.drop_probability = 0.005;  // ~0.5% frame loss: RTO timers really fire
  segment.set_faults(faults);

  const auto costs = sim::CostModel::Default1996();
  const auto profile = drivers::DeviceProfile::Ethernet10();
  core::PlexusHost server(sim, "server", costs, profile,
                          {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost client(sim, "client", costs, profile,
                          {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  server.AttachTo(segment);
  client.AttachTo(segment);
  server.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  client.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  server.arp().AddStatic(net::Ipv4Address(10, 0, 0, 2), net::MacAddress::FromId(2));
  client.arp().AddStatic(net::Ipv4Address(10, 0, 0, 1), net::MacAddress::FromId(1));

  const std::string body(512, 'w');
  std::vector<std::unique_ptr<proto::HttpServerConnection>> server_conns;
  server.tcp().Listen(80, [&](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
    server_conns.push_back(std::make_unique<proto::HttpServerConnection>(
        *ep, [&](const std::string&) {
          server.host().Charge(server.host().costs().http_parse);
          return std::optional(body);
        }));
  });

  struct Conn {
    std::shared_ptr<core::PlexusTcpEndpoint> ep;
    std::unique_ptr<proto::HttpClient> http;
  };
  std::vector<Conn> conns(static_cast<std::size_t>(n));
  ScaleResult result;
  sim::TimePoint last_response;

  // Stagger the connects so the segment is not one giant collision, while
  // keeping lifetimes (handshake + GET + loss recovery + 2MSL) far longer
  // than the spacing: the population is genuinely concurrent. Beyond 10k
  // the 10 Mb/s segment itself is the bottleneck (~1.7 ms of link time per
  // connection), so the gap widens to keep the offered connect rate inside
  // the link's service rate — at 100 µs the tail of a 100k ladder queues
  // ~150 s behind the link and dies of SYN-retry exhaustion. The committed
  // rungs (100..10k) keep their original spacing so their virtual-time
  // numbers stay bit-identical across history.
  const sim::Duration gap =
      n > 10000 ? sim::Duration::Millis(2) : sim::Duration::Micros(100);
  for (int i = 0; i < n; ++i) {
    sim.Schedule(gap * i, [&, i] {
      client.Run([&, i] {
        Conn& c = conns[static_cast<std::size_t>(i)];
        c.ep = client.tcp().Connect(net::Ipv4Address(10, 0, 0, 1), 80);
        c.http = std::make_unique<proto::HttpClient>(
            *c.ep, [&](const proto::HttpClient::Response& r) {
              ++result.finished;
              if (r.status == 200) {
                ++result.completed;
                last_response = sim.Now();
              }
            });
        c.ep->SetOnEstablished([&c] { c.http->Get("/page"); });
      });
    });
  }

  // Run until every connection resolved (or a generous cap under loss).
  // The profiler is reset here so its self-time table covers exactly the
  // run loop below (setup excluded) — the window run_loop_wall_ns measures.
  sim::Profiler::Reset();
  const auto loop_start = std::chrono::steady_clock::now();
  const sim::TimePoint cap = sim::TimePoint::FromNanos(0) + sim::Duration::Seconds(600);
  while (result.finished < n && sim.Now() < cap) {
    sim.RunFor(sim::Duration::Seconds(1));
  }
  const auto loop_stop = std::chrono::steady_clock::now();
  result.run_loop_wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(loop_stop - loop_start)
          .count());
  result.profiled_self_ns = static_cast<double>(sim::Profiler::TotalSelfNs());

  const auto wall_stop = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_stop - wall_start)
          .count());
  result.sim_ms = (last_response - sim::TimePoint::FromNanos(0)).ms();
  result.wall_ns_per_conn = wall_ns / n;
  result.sim_ns_per_conn =
      static_cast<double>((last_response - sim::TimePoint::FromNanos(0)).ns()) / n;
  result.timer_pending_peak = sim.metrics().gauges().at("sim.timer_pending_peak").value();
  result.timer_schedules = sim.metrics().counters().at("sim.timer_schedules").value();
  result.timer_cancels = sim.metrics().counters().at("sim.timer_cancels").value();
  result.timer_fires = sim.metrics().counters().at("sim.timer_fires").value();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::ArgAfter(argc, argv, "--json");
  const std::string profile_path = bench::ArgAfter(argc, argv, "--profile-json");
  const bool profiling = sim::Profiler::enabled();
  bench::JsonReporter reporter;

  // --sizes 100,1000,10000[,100000]: the population ladder to run. The
  // default matches the committed baseline; the 100k rung is opt-in (it is
  // the "first 100k-connection run" artifact, ~10x the 10k rung's wall).
  std::vector<int> sizes = {100, 1000, 10000};
  if (const std::string arg = bench::ArgAfter(argc, argv, "--sizes"); !arg.empty()) {
    sizes.clear();
    std::size_t pos = 0;
    while (pos < arg.size()) {
      const std::size_t comma = arg.find(',', pos);
      const std::string tok = arg.substr(pos, comma == std::string::npos ? arg.size() - pos
                                                                         : comma - pos);
      if (!tok.empty()) sizes.push_back(std::stoi(tok));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (sizes.empty()) {
      std::fprintf(stderr, "FAIL: --sizes parsed to an empty list\n");
      return 1;
    }
  }

  std::printf("connection scale: N clients, connect/GET/close, 0.5%% frame loss\n");
  std::printf("(in-kernel web server; pending timers grow with N — RTO, delack, 2MSL)\n\n");
  std::printf("  %6s %6s | %9s %13s %13s %11s | %10s %10s %10s\n", "N", "sched",
              "done", "sim ms total", "sim ns/conn", "wall ns/c", "peak timers",
              "schedules", "fires");

  int rc = 0;
  for (const int n : sizes) {
    ScaleResult by_impl[2];
    for (const sim::SchedulerImpl impl :
         {sim::SchedulerImpl::kHeap, sim::SchedulerImpl::kWheel}) {
      const bool wheel = impl == sim::SchedulerImpl::kWheel;
      const ScaleResult r = RunScale(impl, n);
      by_impl[wheel ? 1 : 0] = r;
      std::printf("  %6d %6s | %4d/%-4d %13.1f %13.0f %11.0f | %10" PRId64
                  " %10" PRIu64 " %10" PRIu64 "\n",
                  n, wheel ? "wheel" : "heap", r.completed, n, r.sim_ms,
                  r.sim_ns_per_conn, r.wall_ns_per_conn, r.timer_pending_peak,
                  r.timer_schedules, r.timer_fires);
      if (r.completed != n) {
        std::fprintf(stderr, "FAIL: only %d/%d connections completed (n=%d, %s)\n",
                     r.completed, n, n, wheel ? "wheel" : "heap");
        rc = 1;
      }
      // Profiler acceptance gate: at the top N, the ranked self-time table
      // must account for at least 90% of the run loop's measured wall time.
      if (profiling && n == 10000) {
        const double coverage = r.profiled_self_ns / r.run_loop_wall_ns;
        std::printf("         profile coverage: %.1f%% of %.1f ms run-loop wall (%s)\n",
                    coverage * 100.0, r.run_loop_wall_ns / 1e6,
                    wheel ? "wheel" : "heap");
        if (coverage < 0.90) {
          std::fprintf(stderr,
                       "FAIL: profiled self-time covers only %.1f%% of the "
                       "run loop at n=%d (%s); need >= 90%%\n",
                       coverage * 100.0, n, wheel ? "wheel" : "heap");
          rc = 1;
        }
      }
      bench::BenchRecord rec;
      rec.experiment = "scale_connections";
      rec.device = "ethernet-10";
      rec.system = wheel ? "plexus-wheel" : "plexus-heap";
      rec.metric = "conn_n" + std::to_string(n);
      rec.unit = "sim_ns/conn";
      rec.measured = r.sim_ns_per_conn;
      rec.paper_expected = "n/a (scale workload)";
      rec.metrics_json =
          "{\"n\":" + std::to_string(n) +
          ",\"completed\":" + std::to_string(r.completed) +
          ",\"wall_ns_per_conn\":" + std::to_string(r.wall_ns_per_conn) +
          ",\"timer_pending_peak\":" + std::to_string(r.timer_pending_peak) +
          ",\"timer_schedules\":" + std::to_string(r.timer_schedules) +
          ",\"timer_cancels\":" + std::to_string(r.timer_cancels) +
          ",\"timer_fires\":" + std::to_string(r.timer_fires) + "}";
      reporter.Add(std::move(rec));
      // Companion wall-clock row. The "wall" metric/unit makes
      // bench_compare.py treat it as report-only (machine-dependent), while
      // the sim_ns row above stays a hard determinism gate. Distinct metric
      // name: compare keys are (experiment, device, system, metric).
      bench::BenchRecord wall;
      wall.experiment = "scale_connections";
      wall.device = "ethernet-10";
      wall.system = wheel ? "plexus-wheel" : "plexus-heap";
      wall.metric = "wall_n" + std::to_string(n);
      wall.unit = "wall_ns/conn";
      wall.measured = r.wall_ns_per_conn;
      wall.paper_expected = "n/a (host wall clock, report-only)";
      wall.metrics_json = "{\"n\":" + std::to_string(n) + "}";
      reporter.Add(std::move(wall));
    }
    // Determinism across queue implementations: same (deadline, FIFO) order
    // must mean the same virtual completion time to the nanosecond.
    if (by_impl[0].sim_ns_per_conn != by_impl[1].sim_ns_per_conn ||
        by_impl[0].timer_fires != by_impl[1].timer_fires) {
      std::fprintf(stderr,
                   "FAIL: heap and wheel diverge at n=%d (sim ns/conn %f vs %f, "
                   "fires %" PRIu64 " vs %" PRIu64 ")\n",
                   n, by_impl[0].sim_ns_per_conn, by_impl[1].sim_ns_per_conn,
                   by_impl[0].timer_fires, by_impl[1].timer_fires);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("\n  scale check PASS: all connections completed; heap and wheel "
                "agree on virtual time at every N\n");
  }
  if (profiling) {
    // Where the host CPU went during the last (n=10000, wheel) run.
    std::printf("\n%s", sim::Profiler::RankedTable().c_str());
    if (!profile_path.empty()) {
      std::FILE* f = std::fopen(profile_path.c_str(), "w");
      if (f != nullptr) {
        const std::string json = sim::Profiler::ToJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote profile: %s\n", profile_path.c_str());
      } else {
        std::fprintf(stderr, "FAIL: could not write %s\n", profile_path.c_str());
        rc = 1;
      }
    }
  }
  if (!json_path.empty()) {
    if (reporter.WriteTo(json_path)) {
      std::printf("wrote %zu records: %s\n", reporter.size(), json_path.c_str());
    } else {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
      rc = 1;
    }
  }
  return rc;
}
