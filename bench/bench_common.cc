#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "app/forwarder.h"
#include "app/video.h"
#include "drivers/medium.h"
#include "os/socket_host.h"
#include "os/sockets.h"
#include "sim/tracer.h"

namespace bench {

namespace {

// Arms the tracer before the run when the caller asked for it.
void BeginCapture(sim::Simulator& sim, RunObservability* obs) {
  if (obs != nullptr && obs->enable_tracing) sim.tracer().SetEnabled(true);
}

// Collects the per-host metrics snapshots and the tracer's ledgers after
// the run. Hosts are labeled "a" (client/sender) and "b" (server/receiver).
void EndCapture(sim::Simulator& sim, sim::Host& a, sim::Host& b, RunObservability* obs) {
  if (obs == nullptr) return;
  obs->metrics_json =
      "{\"a\":" + a.metrics().ToJson() + ",\"b\":" + b.metrics().ToJson() + "}";
  obs->charge_breakdown_json = sim.tracer().ExportChargeBreakdownJson();
  if (obs->enable_tracing) obs->chrome_trace_json = sim.tracer().ExportChromeJson();
}

core::PlexusHost::NetConfig PNet(int id) {
  return {net::MacAddress::FromId(static_cast<std::uint32_t>(id)),
          net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(id)), 24};
}
os::SocketHost::NetConfig ONet(int id) {
  return {net::MacAddress::FromId(static_cast<std::uint32_t>(id)),
          net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(id)), 24};
}

// Media selection mirrors the testbed: Ethernet is a shared segment, ATM
// goes through the ForeRunner switch, T3 is back-to-back — both of the
// latter are point-to-point here.
std::unique_ptr<drivers::Medium> MakeMedium(sim::Simulator& sim,
                                            const drivers::DeviceProfile& profile) {
  if (profile.name.rfind("ethernet", 0) == 0) {
    return std::make_unique<drivers::EthernetSegment>(sim);
  }
  return std::make_unique<drivers::PointToPointLink>(sim);
}

proto::TcpConfig TcpConfigFor(const drivers::DeviceProfile& profile) {
  proto::TcpConfig cfg;
  cfg.mss = profile.mtu - 40;
  cfg.send_buffer = 64 * 1024;
  cfg.recv_window = 48 * 1024;
  return cfg;
}

}  // namespace

double PlexusUdpRttUs(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                      core::HandlerMode mode, std::size_t payload, int pings,
                      RunObservability* obs) {
  sim::Simulator sim;
  BeginCapture(sim, obs);
  auto medium = MakeMedium(sim, profile);
  core::PlexusHost a(sim, "a", costs, profile, PNet(1), mode, 11);
  core::PlexusHost b(sim, "b", costs, profile, PNet(2), mode, 22);
  a.AttachTo(*medium);
  b.AttachTo(*medium);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);

  auto client = a.udp().CreateEndpoint(5000).value();
  auto server = b.udp().CreateEndpoint(7).value();
  spin::HandlerOptions opts;
  opts.ephemeral = true;
  server->InstallReceiveHandler(
      [&](const net::Mbuf& p, const proto::UdpDatagram& info) {
        server->Send(p.DeepCopy(), info.src_ip, info.src_port);
      },
      opts);

  double total_us = 0;
  int completed = 0;
  sim::TimePoint sent_at;
  std::vector<std::byte> msg(payload);
  std::function<void()> send_ping = [&] {
    a.Run([&] {
      sent_at = sim.Now();
      client->Send(net::Mbuf::FromBytes(msg), net::Ipv4Address(10, 0, 0, 2), 7);
    });
  };
  client->InstallReceiveHandler(
      [&](const net::Mbuf&, const proto::UdpDatagram&) {
        // Skip the first ping: it pays the ARP exchange.
        if (completed > 0) total_us += (sim.Now() - sent_at).us();
        if (++completed < pings + 1) send_ping();
      },
      opts);
  send_ping();
  sim.RunFor(sim::Duration::Seconds(30));
  EndCapture(sim, a.host(), b.host(), obs);
  return completed > 1 ? total_us / (completed - 1) : -1.0;
}

double OsUdpRttUs(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                  std::size_t payload, int pings, RunObservability* obs) {
  sim::Simulator sim;
  BeginCapture(sim, obs);
  auto medium = MakeMedium(sim, profile);
  os::SocketHost a(sim, "a", costs, profile, ONet(1), 11);
  os::SocketHost b(sim, "b", costs, profile, ONet(2), 22);
  a.AttachTo(*medium);
  b.AttachTo(*medium);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);

  os::UdpSocket client(a, 5000);
  os::UdpSocket server(b, 7);
  server.SetOnDatagram([&](std::vector<std::byte> data, const proto::UdpDatagram& info) {
    server.SendTo(std::span<const std::byte>(data), info.src_ip, info.src_port);
  });

  double total_us = 0;
  int completed = 0;
  sim::TimePoint sent_at;
  std::vector<std::byte> msg(payload);
  std::function<void()> send_ping = [&] {
    a.RunUser([&] {
      sent_at = sim.Now();
      client.SendTo(msg, net::Ipv4Address(10, 0, 0, 2), 7);
    });
  };
  client.SetOnDatagram([&](std::vector<std::byte>, const proto::UdpDatagram&) {
    if (completed > 0) total_us += (sim.Now() - sent_at).us();
    if (++completed < pings + 1) send_ping();
  });
  send_ping();
  sim.RunFor(sim::Duration::Seconds(30));
  EndCapture(sim, a.host(), b.host(), obs);
  return completed > 1 ? total_us / (completed - 1) : -1.0;
}

double DriverUdpRttUs(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                      std::size_t payload, int pings) {
  sim::Simulator sim;
  auto medium = MakeMedium(sim, profile);
  sim::Host ha(sim, "a", costs, 11);
  sim::Host hb(sim, "b", costs, 22);
  drivers::Nic na(ha, profile, net::MacAddress::FromId(1));
  drivers::Nic nb(hb, profile, net::MacAddress::FromId(2));
  na.AttachMedium(medium.get());
  nb.AttachMedium(medium.get());
  na.set_promiscuous(true);
  nb.set_promiscuous(true);

  // Echo in the receive interrupt, no protocol processing at all.
  nb.SetReceiveCallback([&](net::MbufPtr frame) { nb.Transmit(std::move(frame)); });

  double total_us = 0;
  int completed = 0;
  sim::TimePoint sent_at;
  // Frame size mirrors the UDP experiment: payload + 42 bytes of headers.
  const std::size_t frame_len = payload + 42;
  std::function<void()> send_ping = [&] {
    ha.Submit(sim::Priority::kKernel, [&] {
      sent_at = sim.Now();
      na.Transmit(net::Mbuf::Allocate(frame_len));
    });
  };
  na.SetReceiveCallback([&](net::MbufPtr) {
    total_us += (sim.Now() - sent_at).us();
    if (++completed < pings) send_ping();
  });
  send_ping();
  sim.RunFor(sim::Duration::Seconds(30));
  return completed > 0 ? total_us / completed : -1.0;
}

namespace {

// Measures a one-way bulk TCP transfer: returns Mb/s from first to last
// delivered payload byte.
template <typename SetupFn>
double MeasureTcpTransfer(std::size_t transfer_bytes, sim::Simulator& sim, SetupFn&& setup) {
  sim::TimePoint first_byte_at, last_byte_at;
  std::size_t received = 0;
  bool started = false;

  auto on_data = [&](std::span<const std::byte> d) {
    if (!started) {
      started = true;
      first_byte_at = sim.Now();
    }
    received += d.size();
    last_byte_at = sim.Now();
  };
  setup(on_data);
  sim.RunFor(sim::Duration::Seconds(600));
  if (received < transfer_bytes || last_byte_at <= first_byte_at) return -1.0;
  const double secs = (last_byte_at - first_byte_at).seconds();
  return static_cast<double>(received) * 8.0 / secs / 1e6;
}

}  // namespace

double PlexusTcpThroughputMbps(const drivers::DeviceProfile& profile,
                               const sim::CostModel& costs, std::size_t transfer_bytes,
                               RunObservability* obs) {
  sim::Simulator sim;
  BeginCapture(sim, obs);
  auto medium = MakeMedium(sim, profile);
  core::PlexusHost a(sim, "a", costs, profile, PNet(1), core::HandlerMode::kInterrupt, 11);
  core::PlexusHost b(sim, "b", costs, profile, PNet(2), core::HandlerMode::kInterrupt, 22);
  a.AttachTo(*medium);
  b.AttachTo(*medium);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  a.tcp().set_config(TcpConfigFor(profile));
  b.tcp().set_config(TcpConfigFor(profile));

  std::shared_ptr<core::PlexusTcpEndpoint> sender;
  std::vector<std::byte> chunk(32 * 1024);
  std::size_t queued = 0;
  std::function<void()> pump;  // function scope: callbacks reference it later

  const double mbps = MeasureTcpTransfer(transfer_bytes, sim, [&](auto on_data) {
    b.tcp().Listen(5001, [on_data](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
      ep->SetOnData(on_data);
    });
    pump = [&, transfer_bytes] {
      while (queued < transfer_bytes) {
        const std::size_t n = std::min(chunk.size(), transfer_bytes - queued);
        const std::size_t took =
            sender->connection().Send(std::span<const std::byte>(chunk.data(), n));
        queued += took;
        if (took < n) break;
      }
      if (queued < transfer_bytes) {
        sim.Schedule(sim::Duration::Millis(5), [&] { a.Run([&] { pump(); }); });
      }
    };
    a.Run([&] {
      sender = a.tcp().Connect(net::Ipv4Address(10, 0, 0, 2), 5001);
      sender->SetOnEstablished([&] { pump(); });
    });
  });
  EndCapture(sim, a.host(), b.host(), obs);
  return mbps;
}

double OsTcpThroughputMbps(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                           std::size_t transfer_bytes, RunObservability* obs) {
  sim::Simulator sim;
  BeginCapture(sim, obs);
  auto medium = MakeMedium(sim, profile);
  os::SocketHost a(sim, "a", costs, profile, ONet(1), 11);
  os::SocketHost b(sim, "b", costs, profile, ONet(2), 22);
  a.AttachTo(*medium);
  b.AttachTo(*medium);
  a.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  b.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  a.tcp_config() = TcpConfigFor(profile);
  b.tcp_config() = TcpConfigFor(profile);

  std::shared_ptr<os::TcpSocket> sender;
  std::shared_ptr<os::TcpSocket> receiver;
  std::unique_ptr<os::TcpListener> listener;
  std::vector<std::byte> chunk(32 * 1024);
  std::size_t queued = 0;
  std::function<void()> pump;  // function scope: callbacks reference it later

  const double mbps = MeasureTcpTransfer(transfer_bytes, sim, [&](auto on_data) {
    listener = std::make_unique<os::TcpListener>(
        b, 5001, [&receiver, on_data](std::shared_ptr<os::TcpSocket> s) {
          receiver = s;
          s->SetOnData(on_data);
        });
    sender = os::TcpSocket::Connect(a, net::Ipv4Address(10, 0, 0, 2), 5001);
    pump = [&, transfer_bytes] {
      while (queued < transfer_bytes) {
        const std::size_t n = std::min(chunk.size(), transfer_bytes - queued);
        // write(2) accepts everything into the user-side buffer; pace by the
        // kernel buffer instead so memory stays bounded.
        if (sender->connection().send_queue_bytes() > 48 * 1024) break;
        sender->Write(std::span<const std::byte>(chunk.data(), n));
        queued += n;
      }
      if (queued < transfer_bytes) {
        sim.Schedule(sim::Duration::Millis(5), [&] { pump(); });
      }
    };
    sender->SetOnEstablished([&] { pump(); });
  });
  EndCapture(sim, a.host(), b.host(), obs);
  return mbps;
}

double DriverThroughputMbps(const drivers::DeviceProfile& profile, const sim::CostModel& costs,
                            std::size_t transfer_bytes) {
  sim::Simulator sim;
  auto medium = MakeMedium(sim, profile);
  sim::Host ha(sim, "a", costs, 11);
  sim::Host hb(sim, "b", costs, 22);
  drivers::Nic na(ha, profile, net::MacAddress::FromId(1));
  drivers::Nic nb(hb, profile, net::MacAddress::FromId(2));
  na.AttachMedium(medium.get());
  nb.AttachMedium(medium.get());
  na.set_promiscuous(true);
  nb.set_promiscuous(true);

  const std::size_t frame_len = profile.mtu;
  std::size_t sent = 0;
  sim::TimePoint first_at, last_at;
  std::size_t received = 0;
  bool started = false;
  nb.SetReceiveCallback([&](net::MbufPtr frame) {
    if (!started) {
      started = true;
      first_at = sim.Now();
    }
    received += frame->PacketLength();
    last_at = sim.Now();
  });

  std::function<void()> send_next = [&] {
    if (sent >= transfer_bytes) return;
    ha.Submit(sim::Priority::kKernel, [&] {
      na.Transmit(net::Mbuf::Allocate(frame_len));
      sent += frame_len;
      ha.AfterTask(send_next);  // back-to-back: next frame when CPU is free
    });
  };
  send_next();
  sim.RunFor(sim::Duration::Seconds(120));
  if (received == 0 || last_at <= first_at) return -1.0;
  return static_cast<double>(received) * 8.0 / (last_at - first_at).seconds() / 1e6;
}

VideoCpuPoint VideoServerCpu(bool plexus, int streams, const sim::CostModel& costs) {
  sim::Simulator sim;
  drivers::PointToPointLink link(sim);
  const auto profile = drivers::DeviceProfile::DecT3();
  app::VideoConfig config;

  core::PlexusHost sink_host(sim, "sink", costs, profile, PNet(2), core::HandlerMode::kInterrupt,
                             99);
  sink_host.AttachTo(link);
  sink_host.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  std::vector<std::unique_ptr<app::VideoSink>> sinks;

  std::unique_ptr<core::PlexusHost> pserver;
  std::unique_ptr<os::SocketHost> dserver;
  std::unique_ptr<app::PlexusVideoServer> pvideo;
  std::unique_ptr<app::DuVideoServer> dvideo;
  if (plexus) {
    pserver = std::make_unique<core::PlexusHost>(sim, "server", costs, profile, PNet(1),
                                                 core::HandlerMode::kInterrupt, 1);
    pserver->AttachTo(link);
    pserver->ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
    pvideo = std::make_unique<app::PlexusVideoServer>(*pserver, config);
  } else {
    dserver = std::make_unique<os::SocketHost>(sim, "server", costs, profile, ONet(1), 1);
    dserver->AttachTo(link);
    dserver->ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
    dvideo = std::make_unique<app::DuVideoServer>(*dserver, config);
  }

  for (int i = 0; i < streams; ++i) {
    const auto port = static_cast<std::uint16_t>(config.base_client_port + i);
    sinks.push_back(std::make_unique<app::VideoSink>(sink_host, port));
    app::VideoClientAddr addr{net::Ipv4Address(10, 0, 0, 2), port};
    if (pvideo) {
      pvideo->AddClient(addr);
    } else {
      dvideo->AddClient(addr);
    }
  }

  sim::Host& host = pvideo ? pserver->host() : dserver->host();
  if (pvideo) pvideo->Start();
  if (dvideo) dvideo->Start();
  sim.RunFor(sim::Duration::Millis(200));  // warm up (ARP)
  const sim::Duration before = host.cpu().busy_total();
  sim.RunFor(sim::Duration::Seconds(1));
  const sim::Duration busy = host.cpu().busy_total() - before;

  const double offered_bps = static_cast<double>(streams) * config.frames_per_second *
                             static_cast<double>(config.frame_bytes) * 8.0;
  VideoCpuPoint point;
  point.streams = streams;
  point.utilization = sim::Cpu::Utilization(busy, sim::Duration::Seconds(1));
  point.net_saturated = offered_bps >= static_cast<double>(profile.bandwidth_bps);
  return point;
}

ForwardingResult PlexusForwarding(const sim::CostModel& costs) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  core::PlexusHost client(sim, "client", costs, profile, PNet(1));
  core::PlexusHost fwd(sim, "fwd", costs, profile, PNet(2));
  core::PlexusHost backend(sim, "backend", costs, profile, PNet(3));
  for (core::PlexusHost* h : {&client, &fwd, &backend}) {
    h->AttachTo(segment);
    h->ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  }
  // Warm ARP caches: Figure 7 measures forwarding latency, not neighbor
  // discovery.
  core::PlexusHost* hosts[] = {&client, &fwd, &backend};
  for (auto* h : hosts) {
    for (int id = 1; id <= 3; ++id) {
      h->arp().AddStatic(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(id)),
                         net::MacAddress::FromId(static_cast<std::uint32_t>(id)));
    }
  }
  app::PlexusTcpForwarder forwarder(fwd, 8080, net::Ipv4Address(10, 0, 0, 3), 80);
  backend.tcp().Listen(80, [](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
    ep->SetOnData([ep](std::span<const std::byte> d) { ep->Write(d); });
  });

  ForwardingResult result{-1, -1, -1};
  sim::TimePoint connect_start, send_at;
  double rtt_total = 0;
  int rtts = 0;
  std::shared_ptr<core::PlexusTcpEndpoint> conn;
  std::function<void()> send_req = [&] {
    client.Run([&] {
      send_at = sim.Now();
      conn->WriteString("XXXXXXXX");
    });
  };
  client.Run([&] {
    connect_start = sim.Now();
    conn = client.tcp().Connect(net::Ipv4Address(10, 0, 0, 2), 8080);
    conn->SetOnEstablished([&] {
      result.connect_us = (sim.Now() - connect_start).us();
      send_req();
    });
    conn->SetOnData([&](std::span<const std::byte>) {
      if (rtts == 0) result.first_response_us = (sim.Now() - connect_start).us();
      rtt_total += (sim.Now() - send_at).us();
      if (++rtts < 16) send_req();
    });
  });
  sim.RunFor(sim::Duration::Seconds(60));
  if (rtts > 0) result.request_rtt_us = rtt_total / rtts;
  return result;
}

ForwardingResult DuForwarding(const sim::CostModel& costs) {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  os::SocketHost client(sim, "client", costs, profile, ONet(1));
  os::SocketHost fwd(sim, "fwd", costs, profile, ONet(2));
  os::SocketHost backend(sim, "backend", costs, profile, ONet(3));
  for (os::SocketHost* h : {&client, &fwd, &backend}) {
    h->AttachTo(segment);
    h->ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  }
  os::SocketHost* hosts[] = {&client, &fwd, &backend};
  for (auto* h : hosts) {
    for (int id = 1; id <= 3; ++id) {
      h->arp().AddStatic(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(id)),
                         net::MacAddress::FromId(static_cast<std::uint32_t>(id)));
    }
  }
  app::DuTcpSplicer splicer(fwd, 8080, net::Ipv4Address(10, 0, 0, 3), 80);
  std::shared_ptr<os::TcpSocket> backend_keep;
  os::TcpListener backend_listener(backend, 80, [&](std::shared_ptr<os::TcpSocket> s) {
    backend_keep = s;
    s->SetOnData([sp = s.get()](std::span<const std::byte> d) { sp->Write(d); });
  });

  ForwardingResult result{-1, -1, -1};
  sim::TimePoint connect_start = sim.Now(), send_at;
  double rtt_total = 0;
  int rtts = 0;
  auto conn = os::TcpSocket::Connect(client, net::Ipv4Address(10, 0, 0, 2), 8080);
  std::function<void()> send_req = [&] {
    client.RunUser([&] {
      send_at = sim.Now();
      conn->WriteString("XXXXXXXX");
    });
  };
  conn->SetOnEstablished([&] {
    result.connect_us = (sim.Now() - connect_start).us();
    send_req();
  });
  conn->SetOnData([&](std::span<const std::byte>) {
    if (rtts == 0) result.first_response_us = (sim.Now() - connect_start).us();
    rtt_total += (sim.Now() - send_at).us();
    if (++rtts < 16) send_req();
  });
  sim.RunFor(sim::Duration::Seconds(60));
  if (rtts > 0) result.request_rtt_us = rtt_total / rtts;
  return result;
}

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Fixed three-decimal rendering so the JSON is byte-stable across runs.
std::string FormatMeasured(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

namespace {

// Host provenance for the meta block. Not part of any comparison — purely
// "where did these numbers come from" context on a checked-in baseline.
std::string HostMetaJson() {
  std::ostringstream out;
  out << "{\"cpus\":" << std::thread::hardware_concurrency();
#if defined(__unix__) || defined(__APPLE__)
  utsname u{};
  if (uname(&u) == 0) {
    out << ",\"os\":" << JsonQuote(u.sysname)
        << ",\"release\":" << JsonQuote(u.release)
        << ",\"machine\":" << JsonQuote(u.machine);
  }
#endif
  out << '}';
  return out.str();
}

}  // namespace

std::string JsonReporter::ToJson() const {
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  const char* sha = std::getenv("PLEXUS_GIT_SHA");
  std::ostringstream out;
  out << "{\"schema\":\"plexus-bench-v1\",\"meta\":{\"wall_seconds\":"
      << FormatMeasured(wall_seconds)
      << ",\"host\":" << HostMetaJson()
      << ",\"git_sha\":" << JsonQuote(sha != nullptr ? sha : "unknown")
      << "},\"records\":[";
  bool first_record = true;
  for (const BenchRecord& r : records_) {
    if (!first_record) out << ',';
    first_record = false;
    out << "{\"experiment\":" << JsonQuote(r.experiment)
        << ",\"device\":" << JsonQuote(r.device)
        << ",\"system\":" << JsonQuote(r.system)
        << ",\"metric\":" << JsonQuote(r.metric)
        << ",\"unit\":" << JsonQuote(r.unit)
        << ",\"measured\":" << FormatMeasured(r.measured)
        << ",\"paper_expected\":" << JsonQuote(r.paper_expected);
    // Captured blobs are already JSON; embed them verbatim.
    if (!r.metrics_json.empty()) out << ",\"metrics\":" << r.metrics_json;
    if (!r.charge_breakdown_json.empty()) {
      out << ",\"charge_breakdown\":" << r.charge_breakdown_json;
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

bool JsonReporter::WriteTo(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << ToJson() << '\n';
  return static_cast<bool>(f);
}

std::string ArgAfter(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return "";
}

}  // namespace bench
