#!/usr/bin/env bash
# Builds the benchmarks and produces the machine-readable results:
#   BENCH_fig5.json        Figure 5 UDP RTT cells (paper-expected vs measured,
#                          per-host metrics, per-layer CPU breakdown)
#   BENCH_tab1.json        Section 4.2 TCP throughput cells
#   BENCH_fig5_trace.json  Chrome trace of the traced Ethernet ping-pong
#                          (open in chrome://tracing or Perfetto)
#   BENCH_micro.json       Demux scaling microbenchmark (linear guard scan
#                          vs compiled index, wall + simulated ns/raise)
#   BENCH_timer.json       Timer queue microbenchmark (hierarchical wheel vs
#                          binary heap, schedule+cancel and drain)
#   BENCH_alloc.json       Allocation microbenchmark (slab vs operator
#                          new/delete churn at the engine's hot object
#                          sizes, plus the SmallFn heap-fallback count)
#   BENCH_scale.json       Connection-scale workload (100..100k concurrent
#                          TCP clients against the in-kernel web server)
#   BENCH_overload.json    Overload sweep: goodput vs offered load 0.1x-10x,
#                          protected (rx ring + poll switch + bounded pool +
#                          deferred-queue shedding) vs unprotected, plus the
#                          HTTP-under-flood progress check
#   BENCH_chaos.json       Chaos recovery: per-fault recovery overhead and
#                          goodput retention vs link-flap intensity
#   BENCH_adversarial.json Hostile traffic: goodput retention under SYN flood
#                          (cookies on/off) and blind-RST spray, plus the
#                          1000-seed parser fuzz corpus verdict
# Also runs the gated microbenchmarks, whose exit statuses assert that
# disabled tracing adds no measurable cost to Event::Raise, that indexed
# dispatch at N=256 handlers is >=5x the linear scan, and that the timing
# wheel's schedule+cancel throughput at 64k pending timers is >=1.5x the
# heap (both queues now draw nodes from the same slab pool, so the gate
# measures the wheel's algorithmic edge, not the old allocation gap).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-.}"

# Run provenance for the plexus-bench-v1 meta block: every reporter stamps
# the git SHA it was produced from (falls back to "unknown" outside a repo).
PLEXUS_GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
export PLEXUS_GIT_SHA

cmake -B "$BUILD_DIR" -S .  # RelWithDebInfo by default (top-level CMakeLists)
cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
  bench_fig5_udp_latency bench_tab1_tcp_throughput bench_micro_dispatch \
  bench_micro_timer bench_micro_alloc bench_scale_connections \
  bench_overload_sweep bench_chaos bench_adversarial

"$BUILD_DIR/bench/bench_fig5_udp_latency" \
  --json "$OUT_DIR/BENCH_fig5.json" --trace "$OUT_DIR/BENCH_fig5_trace.json"
"$BUILD_DIR/bench/bench_tab1_tcp_throughput" --json "$OUT_DIR/BENCH_tab1.json"
"$BUILD_DIR/bench/bench_micro_dispatch" --benchmark_min_time=0.05 \
  --json "$OUT_DIR/BENCH_micro.json"
"$BUILD_DIR/bench/bench_micro_timer" --json "$OUT_DIR/BENCH_timer.json"
"$BUILD_DIR/bench/bench_micro_alloc" --json "$OUT_DIR/BENCH_alloc.json"
"$BUILD_DIR/bench/bench_scale_connections" --sizes 100,1000,10000,100000 \
  --json "$OUT_DIR/BENCH_scale.json"
"$BUILD_DIR/bench/bench_overload_sweep" --json "$OUT_DIR/BENCH_overload.json"
"$BUILD_DIR/bench/bench_chaos" --json "$OUT_DIR/BENCH_chaos.json"
"$BUILD_DIR/bench/bench_adversarial" --fuzz-seeds 1000 \
  --json "$OUT_DIR/BENCH_adversarial.json"

echo "bench artifacts: $OUT_DIR/BENCH_fig5.json $OUT_DIR/BENCH_tab1.json" \
     "$OUT_DIR/BENCH_fig5_trace.json $OUT_DIR/BENCH_micro.json" \
     "$OUT_DIR/BENCH_timer.json $OUT_DIR/BENCH_alloc.json" \
     "$OUT_DIR/BENCH_scale.json" \
     "$OUT_DIR/BENCH_overload.json" "$OUT_DIR/BENCH_chaos.json" \
     "$OUT_DIR/BENCH_adversarial.json"
