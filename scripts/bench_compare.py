#!/usr/bin/env python3
"""Bench regression checker: diff a fresh plexus-bench-v1 JSON against a
checked-in baseline.

Records are matched by (experiment, device, system, metric). For each pair the
`measured` value is compared under a per-metric tolerance band:

  * deterministic metrics (simulated time / virtual CPU: unit mentions
    "sim", "us", "Mb/s", ...) get a tight both-sided relative band
    (default 5%) — these come off the virtual clock and only move when
    the engine's behaviour changes;
  * wall-clock metrics (unit mentions "wall") are REPORT-ONLY: they vary
    with host load, so drift is printed but never fails the check.

Exit status: 0 when every deterministic metric is inside its band, 1 on
any regression/improvement outside the band or a record present in the
baseline but missing from the fresh run (new records in the fresh run are
reported but allowed — the suite grows).

`--self-test` proves the checker can actually fail: it re-reads the
baseline, injects a +25% regression into every deterministic metric, and
exits 0 only if the comparison (correctly) rejects the doctored run.

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "plexus-bench-v1":
        raise SystemExit(f"{path}: not a plexus-bench-v1 document "
                         f"(schema={doc.get('schema')!r})")
    out = {}
    for rec in doc.get("records", []):
        key = (rec.get("experiment", ""), rec.get("device", ""),
               rec.get("system", ""), rec.get("metric", ""))
        if key in out:
            raise SystemExit(f"{path}: duplicate record key {key}")
        out[key] = rec
    return out


def is_wall_clock(rec):
    unit = rec.get("unit", "").lower()
    metric = rec.get("metric", "").lower()
    return "wall" in unit or "wall" in metric


def relative_delta(baseline, fresh):
    if baseline == 0:
        return 0.0 if fresh == 0 else float("inf")
    return (fresh - baseline) / abs(baseline)


def compare(baseline, fresh, tolerance, exact_unit=None):
    """Returns (failures, lines): failure count and the full report.

    exact_unit: when set, any deterministic record whose unit contains this
    substring must match the baseline bit-for-bit (tolerance zero). Used to
    hard-gate virtual-time identity: scale records in sim_ns must not move
    at all, because the simulation is deterministic to the nanosecond.
    """
    failures = 0
    lines = []
    for key in sorted(baseline):
        label = "/".join(part for part in key if part)
        if key not in fresh:
            failures += 1
            lines.append(f"FAIL {label}: present in baseline, missing from "
                         f"fresh run")
            continue
        b = baseline[key]
        f = fresh[key]
        delta = relative_delta(b.get("measured", 0.0), f.get("measured", 0.0))
        pct = f"{delta * 100.0:+.2f}%"
        exact = (exact_unit is not None and not is_wall_clock(b)
                 and exact_unit in b.get("unit", ""))
        if is_wall_clock(b):
            lines.append(f"  ok {label}: {pct} (wall-clock, report-only)")
        elif exact:
            if b.get("measured") == f.get("measured"):
                lines.append(f"  ok {label}: identical (exact gate)")
            else:
                failures += 1
                lines.append(f"FAIL {label}: {b.get('measured')} -> "
                             f"{f.get('measured')} (exact gate: virtual time "
                             f"must be bit-identical)")
        elif abs(delta) <= tolerance:
            lines.append(f"  ok {label}: {pct} (within ±{tolerance:.0%})")
        else:
            failures += 1
            lines.append(f"FAIL {label}: {b.get('measured')} -> "
                         f"{f.get('measured')} ({pct}, band ±{tolerance:.0%})")
    for key in sorted(set(fresh) - set(baseline)):
        label = "/".join(part for part in key if part)
        lines.append(f" new {label}: not in baseline (allowed)")
    return failures, lines


def self_test(baseline, tolerance):
    doctored = {}
    injected = 0
    for key, rec in baseline.items():
        rec = dict(rec)
        if not is_wall_clock(rec):
            rec["measured"] = rec.get("measured", 0.0) * 1.25
            injected += 1
        doctored[key] = rec
    if injected == 0:
        print("self-test FAIL: baseline has no deterministic records to "
              "doctor")
        return 1
    failures, _ = compare(baseline, doctored, tolerance)
    if failures == injected:
        print(f"self-test PASS: +25% injection rejected on all {injected} "
              f"deterministic metrics")
        return 0
    print(f"self-test FAIL: only {failures}/{injected} injected regressions "
          f"detected")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in plexus-bench-v1 JSON")
    parser.add_argument("fresh", nargs="?",
                        help="freshly produced JSON to check (omit with "
                             "--self-test)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="both-sided relative band for deterministic "
                             "metrics (default 0.05 = 5%%)")
    parser.add_argument("--exact-unit", default=None,
                        help="deterministic records whose unit contains this "
                             "substring must match the baseline exactly "
                             "(e.g. sim_ns for virtual-time identity)")
    parser.add_argument("--self-test", action="store_true",
                        help="inject a +25%% regression into the baseline and "
                             "require the comparison to reject it")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    if args.self_test:
        return self_test(baseline, args.tolerance)
    if args.fresh is None:
        parser.error("fresh JSON required unless --self-test")

    fresh = load_records(args.fresh)
    failures, lines = compare(baseline, fresh, args.tolerance, args.exact_unit)
    print(f"bench_compare: {args.fresh} vs baseline {args.baseline} "
          f"(±{args.tolerance:.0%} on deterministic metrics)")
    for line in lines:
        print(line)
    if failures:
        print(f"bench_compare: FAIL ({failures} metric(s) outside the band)")
        return 1
    print(f"bench_compare: PASS ({len(baseline)} baseline metric(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
