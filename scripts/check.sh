#!/usr/bin/env bash
# Builds the suite under AddressSanitizer + UndefinedBehaviorSanitizer and
# runs every tier-1 test seven times: plain, with PLEXUS_TRACE=1 (tracer
# recording), with PLEXUS_MBUF_POOL=small (starved 256-segment mbuf pool),
# with PLEXUS_CHAOS_FLAP=1 (mid-run link flap), with PLEXUS_PROFILE=1
# (wall-clock engine profiler armed), with PLEXUS_SLAB=off (slab
# allocators degraded to plain operator new/delete), and with
# PLEXUS_BATCH=off (rx bursts, batch dispatch, and GRO/GSO all disabled —
# the engine must degrade to the per-packet path byte-identically). Catches the memory
# bugs the fault-containment, tracing, overload-control, observability,
# and allocation machinery must never introduce (use-after-free across
# handler quarantine, fence lifetime mistakes during stack unwinding,
# dangling span frames across ring eviction, pool accounting races on
# drop paths, slab-gate behaviour divergence, ...).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPLEXUS_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j "$(nproc)"

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure "$@"

echo "=== second pass: tracer enabled (PLEXUS_TRACE=1) ==="
PLEXUS_TRACE=1 ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure "$@"

echo "=== third pass: starved mbuf pool (PLEXUS_MBUF_POOL=small) ==="
# 256-segment pools force the exhaustion paths (rx refill failures, tx
# ENOBUFS drops, TCP retransmit recovery) through the whole tier-1 suite,
# still under the sanitizers: exhaustion must degrade, never corrupt.
PLEXUS_MBUF_POOL=small ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure "$@"

echo "=== fourth pass: mid-run link flap (PLEXUS_CHAOS_FLAP=1) ==="
# Every medium briefly drops carrier at t=7.777ms: the whole tier-1 suite
# must tolerate a link blip in the middle of its workload (retransmission,
# ARP retry, and carrier-notification paths), still under the sanitizers.
PLEXUS_CHAOS_FLAP=1 ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure "$@"

echo "=== fifth pass: wall-clock profiler armed (PLEXUS_PROFILE=1) ==="
# The engine self-profiler records host time on every hot path; it must not
# perturb virtual time or memory-safety anywhere in the tier-1 suite.
PLEXUS_PROFILE=1 ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure "$@"

echo "=== sixth pass: slab allocators disabled (PLEXUS_SLAB=off) ==="
# Every pooled allocation degrades to plain operator new/delete (accounting
# intact): behaviour and virtual time must be identical with and without
# the slabs, and the heap path gets full sanitizer coverage.
PLEXUS_SLAB=off ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure "$@"

echo "=== seventh pass: batched packet path disabled (PLEXUS_BATCH=off) ==="
# The off-gate identity: with batching off the NIC delivers one frame per
# interrupt, RaiseBatch degrades to the per-item loop, and GRO/GSO never
# engage. The whole tier-1 suite must behave exactly as the per-packet
# engine did, still under the sanitizers.
PLEXUS_BATCH=off ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure "$@"

echo "=== slow pass: soak / scale suites (label: slow) ==="
# The connection-churn soak and other large-population suites run once,
# in their own labelled pass, still under the sanitizers.
ctest --test-dir "$BUILD_DIR" -L slow --output-on-failure "$@"

echo "=== perf smoke: demux index vs linear guard scan, timer wheel vs heap ==="
# Wall-clock gates, so they run against the regular (non-sanitized) build:
# bench_micro_dispatch exits non-zero if indexed dispatch at N=256 handlers
# is not at least 5x faster than the linear path it replaces (and if
# disabled tracing taxes the raise path); bench_micro_timer exits non-zero
# if the timing wheel's schedule+cancel throughput at 64k pending timers is
# not at least 1.5x the binary heap's (both queues now slab-pooled, so the
# gate measures the wheel's algorithmic edge).
PERF_BUILD_DIR="${PERF_BUILD_DIR:-build}"
cmake -B "$PERF_BUILD_DIR" -S .
cmake --build "$PERF_BUILD_DIR" -j "$(nproc)" --target bench_micro_dispatch \
  bench_micro_timer bench_overload_sweep bench_chaos bench_adversarial \
  bench_fig5_udp_latency bench_tab1_tcp_throughput bench_scale_connections
"$PERF_BUILD_DIR/bench/bench_micro_dispatch" --benchmark_filter=none
"$PERF_BUILD_DIR/bench/bench_micro_timer"

echo "=== overload gate: graceful degradation at 10x offered load ==="
# Exits non-zero unless the protected server's goodput at 10x stays >= 60%
# of its peak, interrupt->poll transitions occur and are traced, and the
# mbuf pool drains to zero after every run.
"$PERF_BUILD_DIR/bench/bench_overload_sweep"

echo "=== chaos gate: recovery + goodput retention under faults ==="
# Exits non-zero unless all faulted transfers complete byte-exactly,
# goodput retention at the standard flap (period 2s, down fraction 0.1)
# stays >= 60%, crash recovery stays under 10s of overhead, and every run
# drains leak-free with zero quarantines. The 1000-seed invariant sweep
# runs in the slow ctest pass above (chaos_property_test).
"$PERF_BUILD_DIR/bench/bench_chaos"

echo "=== adversarial gate: SYN flood, RST spray, and parser fuzz corpus ==="
# Exits non-zero unless SYN cookies hold >= 80% connection-churn goodput
# under a 1000 SYN/s spoofed flood (and the cookie-less listener visibly
# collapses), every blind-RST-sprayed transfer completes byte-exactly with
# challenge ACKs observed, the full 1000-seed structure-aware fuzz corpus
# runs with zero invariant failures, and every run drains leak-free with
# zero quarantines.
"$PERF_BUILD_DIR/bench/bench_adversarial" --fuzz-seeds 1000

echo "=== bench regression gate: fresh fig5/tab1 vs committed baselines ==="
# Re-runs the two paper-figure benches and diffs their deterministic
# (virtual-clock) metrics against bench/baselines/ with a ±5% band;
# --self-test proves the comparator still rejects an injected regression.
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$BENCH_TMP"' EXIT
# The committed baselines predate the batched packet path, whose burst
# coalescing legitimately moves virtual time; PLEXUS_BATCH=off pins the
# per-packet engine these baselines describe (and doubles as a system-level
# proof that the off-gate really restores it).
PLEXUS_BATCH=off "$PERF_BUILD_DIR/bench/bench_fig5_udp_latency" --json "$BENCH_TMP/BENCH_fig5.json"
PLEXUS_BATCH=off "$PERF_BUILD_DIR/bench/bench_tab1_tcp_throughput" --json "$BENCH_TMP/BENCH_tab1.json"
python3 scripts/bench_compare.py bench/baselines/BENCH_fig5.json "$BENCH_TMP/BENCH_fig5.json"
python3 scripts/bench_compare.py bench/baselines/BENCH_tab1.json "$BENCH_TMP/BENCH_tab1.json"
python3 scripts/bench_compare.py bench/baselines/BENCH_fig5.json --self-test

echo "=== scale gate: virtual-time identity at 100..100k connections ==="
# Re-runs the full connection ladder (including the 100k rung) and diffs it
# against the committed baseline. The sim_ns rows are an EXACT gate — the
# simulation is deterministic, so any drift in virtual time means engine
# behaviour changed; the wall rows are report-only (machine-dependent).
PLEXUS_BATCH=off "$PERF_BUILD_DIR/bench/bench_scale_connections" \
  --sizes 100,1000,10000,100000 --json "$BENCH_TMP/BENCH_scale.json"
python3 scripts/bench_compare.py bench/baselines/BENCH_scale.json \
  "$BENCH_TMP/BENCH_scale.json" --exact-unit sim_ns
