#!/usr/bin/env python3
"""Per-PR wall-clock trend for the connection-scale bench.

Walks the git history of BENCH_scale.json (every commit that touched it),
extracts wall ns/conn for a chosen (n, scheduler) cell from each revision,
and prints the trajectory with per-step and cumulative speedups — the
"how much faster did each PR make the engine" view that individual bench
runs can't give.

Wall numbers are machine-dependent, so the trend is only meaningful across
commits benched on comparable hosts; the table exists to show direction
and rough magnitude, not to be a gate (check.sh gates sim-time identity
instead). Records are read from both the current schema (a wall_n<N>
record with unit wall_ns/conn) and the older one (wall_ns_per_conn nested
in the sim record's metrics block).

Stdlib only; no third-party imports.
"""

import argparse
import json
import subprocess
import sys


def git(*args):
    return subprocess.run(["git", *args], capture_output=True, text=True,
                          check=False)


def wall_ns_per_conn(doc, n, system):
    """Extract wall ns/conn for (n, system) from a plexus-bench-v1 doc."""
    metric_wall = f"wall_n{n}"
    metric_sim = f"conn_n{n}"
    for rec in doc.get("records", []):
        if rec.get("system") != system:
            continue
        if rec.get("metric") == metric_wall:
            return float(rec.get("measured", 0.0))
    for rec in doc.get("records", []):
        if rec.get("system") != system or rec.get("metric") != metric_sim:
            continue
        metrics = rec.get("metrics", {})
        if "wall_ns_per_conn" in metrics:
            return float(metrics["wall_ns_per_conn"])
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--file", default="BENCH_scale.json",
                        help="tracked bench artifact (default BENCH_scale.json)")
    parser.add_argument("--n", type=int, default=10000,
                        help="connection count to trend (default 10000)")
    parser.add_argument("--system", default="plexus-wheel",
                        help="scheduler system name (default plexus-wheel)")
    args = parser.parse_args()

    log = git("log", "--reverse", "--format=%H %h %s", "--", args.file)
    if log.returncode != 0:
        print(f"bench_trend: not a git repository? {log.stderr.strip()}",
              file=sys.stderr)
        return 1
    commits = [line.split(" ", 2) for line in log.stdout.splitlines() if line]
    if not commits:
        print(f"bench_trend: no commits touch {args.file}", file=sys.stderr)
        return 1

    rows = []
    for sha, short, subject in commits:
        show = git("show", f"{sha}:{args.file}")
        if show.returncode != 0:
            continue  # deleted at this revision
        try:
            doc = json.loads(show.stdout)
        except json.JSONDecodeError:
            continue
        wall = wall_ns_per_conn(doc, args.n, args.system)
        if wall is not None and wall > 0:
            rows.append((short, subject, wall))

    if not rows:
        print(f"bench_trend: no revision of {args.file} has a wall number "
              f"for n={args.n} system={args.system}", file=sys.stderr)
        return 1

    first = rows[0][2]
    print(f"wall ns/conn trend: {args.file}, n={args.n}, {args.system}")
    print(f"(machine-dependent; speedups meaningful only across comparable "
          f"hosts)\n")
    print(f"  {'commit':8} {'wall ns/conn':>13} {'vs prev':>8} {'vs first':>9}"
          f"  subject")
    prev = None
    for short, subject, wall in rows:
        step = f"{prev / wall:7.2f}x" if prev else f"{'-':>8}"
        cume = f"{first / wall:8.2f}x"
        subject = subject if len(subject) <= 60 else subject[:57] + "..."
        print(f"  {short:8} {wall:13.0f} {step} {cume}  {subject}")
        prev = wall
    return 0


if __name__ == "__main__":
    sys.exit(main())
