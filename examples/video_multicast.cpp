// The Section 5.1 network video system: an in-kernel video server multicasts
// 30fps streams over the T3 network; compare server CPU utilization against
// the same workload on the monolithic (DIGITAL UNIX-style) baseline.
//
//   build/examples/video_multicast [streams]
#include <cstdio>
#include <cstdlib>

#include "app/video.h"
#include "bench/bench_common.h"
#include "drivers/device_profile.h"
#include "drivers/medium.h"

int main(int argc, char** argv) {
  const int streams = argc > 1 ? std::atoi(argv[1]) : 15;

  std::printf("Network video: %d client stream(s), 30 fps x 12.5 KB frames over 45 Mb/s T3\n",
              streams);
  std::printf("(offered load: %.1f Mb/s; the T3 saturates at 15 streams)\n\n",
              streams * 30 * 12500 * 8 / 1e6);

  const auto costs = sim::CostModel::Default1996();
  const auto plexus = bench::VideoServerCpu(/*plexus=*/true, streams, costs);
  const auto du = bench::VideoServerCpu(/*plexus=*/false, streams, costs);

  std::printf("SPIN/Plexus server (in-kernel extension, zero-copy multicast):\n");
  std::printf("  CPU utilization: %.1f%%\n", plexus.utilization * 100);
  std::printf("DIGITAL UNIX server (user process: read() + one sendto() per client):\n");
  std::printf("  CPU utilization: %.1f%%\n", du.utilization * 100);
  std::printf("\nDU / Plexus CPU ratio: %.2fx (the paper: \"SPIN consumes only half as much\n"
              "of the processor\" at saturation)\n",
              du.utilization / plexus.utilization);

  // The client-side story (Section 5.1, "The client"): display costs dwarf
  // protocol costs, so the systems converge on the client.
  std::printf("\nClient-side display cost per frame (both systems run the same viewer):\n");
  sim::CostModel cm = costs;
  const std::size_t frame = 12500;
  const double checksum_us = (cm.checksum_per_byte * static_cast<std::int64_t>(frame)).us();
  const double decompress_us =
      (cm.decompress_per_byte * static_cast<std::int64_t>(frame)).us();
  const double fb_us = (cm.fb_write_per_byte * static_cast<std::int64_t>(frame)).us();
  std::printf("  checksum pass:    %6.1f us\n", checksum_us);
  std::printf("  decompress pass:  %6.1f us\n", decompress_us);
  std::printf("  framebuffer write:%6.1f us  (10x slower than RAM, per the paper)\n", fb_us);
  std::printf("  -> %.0f%% of client time is display, not protocol — why the client showed\n"
              "     no SPIN advantage until better video hardware (DEC J300) arrived.\n",
              fb_us / (checksum_us + decompress_us + fb_us) * 100);
  return 0;
}
