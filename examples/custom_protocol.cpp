// Application-specific protocols, end to end (the paper's Section 1.1
// motivation): an audio/video application that (a) disables the UDP
// checksum — "applications where data integrity is optional ... might use
// an implementation of UDP for which the checksum has been disabled" — and
// (b) arrives as a *dynamically linked extension* whose access rights are
// governed by logical protection domains.
//
// The example also demonstrates the protection model failing closed: the
// same extension cannot be linked against a domain that withholds the
// interfaces it imports.
#include <cstdio>

#include "core/plexus.h"
#include "drivers/device_profile.h"
#include "drivers/medium.h"
#include "net/view.h"
#include "spin/linker.h"

namespace {

// The wire format of our application-specific protocol: a tiny sequenced
// audio frame header, viewed with net::View (the paper's VIEW operator).
struct AudioFrameHeader {
  net::BigEndian32 sequence;
  net::BigEndian16 codec;
  net::BigEndian16 samples;
};
static_assert(sizeof(AudioFrameHeader) == 8);

}  // namespace

int main() {
  sim::Simulator sim;
  drivers::PointToPointLink link(sim);
  core::PlexusHost sender(sim, "sender", sim::CostModel::Default1996(),
                          drivers::DeviceProfile::DecT3(),
                          {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost receiver(sim, "receiver", sim::CostModel::Default1996(),
                            drivers::DeviceProfile::DecT3(),
                            {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  sender.AttachTo(link);
  receiver.AttachTo(link);
  sender.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  receiver.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);

  // --- The receiver-side extension, as a dynamically linked module --------
  std::shared_ptr<core::UdpEndpoint> rx_endpoint;
  std::uint32_t frames = 0, gaps = 0, expected_seq = 0;

  spin::Extension audio_rx("audio-receiver");
  audio_rx.Require("UdpManager").OnInit([&](const spin::SymbolTable& symbols) {
    auto* udp = symbols.GetAs<core::UdpManager*>("UdpManager");
    rx_endpoint = udp->CreateEndpoint(9000).value();
    spin::HandlerOptions opts;
    opts.ephemeral = true;
    opts.name = "audio-rx";
    (void)rx_endpoint->InstallReceiveHandler(
        [&](const net::Mbuf& payload, const proto::UdpDatagram&) {
          // Zero-copy typed access to the header (VIEW).
          auto hdr = net::ViewPacket<AudioFrameHeader>(payload);
          if (hdr.sequence.value() != expected_seq) ++gaps;  // AV apps tolerate loss
          expected_seq = hdr.sequence.value() + 1;
          ++frames;
        },
        opts);
  });
  audio_rx.OnCleanup([&] { rx_endpoint.reset(); });

  // Linking against the APP domain succeeds: it exports UdpManager.
  auto linked = receiver.linker().Link(std::move(audio_rx), receiver.app_domain());
  if (!linked.ok()) {
    std::fprintf(stderr, "link failed: %s\n", linked.error().message.c_str());
    return 1;
  }
  std::printf("audio-receiver extension linked into the %s kernel\n",
              receiver.host().name().c_str());

  // A snooping extension that wants raw Ethernet access is REJECTED by the
  // same application domain (link-time protection).
  spin::Extension snooper("traffic-snooper");
  snooper.Require("EthernetManager");
  auto denied = receiver.linker().Link(std::move(snooper), receiver.app_domain());
  std::printf("traffic-snooper link against app domain: %s\n  -> %s\n",
              denied.ok() ? "ACCEPTED (bug!)" : "REJECTED",
              denied.ok() ? "" : denied.error().message.c_str());

  // --- The sender: checksum-free UDP, per the AV optimization --------------
  auto tx = sender.udp().CreateEndpoint(9001).value();
  tx->set_checksum_enabled(false);

  const int kFrames = 200;
  const std::size_t kFrameBytes = 1024;
  int sent = 0;
  std::function<void()> send_frame = [&] {
    sender.Run([&] {
      auto m = net::Mbuf::Allocate(sizeof(AudioFrameHeader) + kFrameBytes);
      AudioFrameHeader hdr;
      hdr.sequence = static_cast<std::uint32_t>(sent);
      hdr.codec = 0x0A;
      hdr.samples = 512;
      net::StorePacket(*m, hdr);
      tx->Send(std::move(m), net::Ipv4Address(10, 0, 0, 2), 9000);
    });
    if (++sent < kFrames) {
      sim.Schedule(sim::Duration::Millis(5), send_frame);  // 200 fps audio ticks
    }
  };
  send_frame();
  sim.RunFor(sim::Duration::Seconds(5));

  std::printf("\nsent %d frames (checksum OFF), received %u, sequence gaps %u\n", kFrames,
              frames, gaps);

  // --- Runtime adaptation: the extension leaves with its application -------
  receiver.linker().Unlink(linked.value());
  std::printf("extension unlinked; port 9000 released: %s\n",
              receiver.udp().CreateEndpoint(9000).ok() ? "yes" : "no");
  return 0;
}
