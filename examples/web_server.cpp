// The paper's closing demo: "A demonstration of the protocol stack as it
// services HTTP requests can be found at http://www-spin.cs.washington.edu"
// — an HTTP server running as a Plexus extension, plus an active-message
// hit counter handled entirely at interrupt level (Section 3.3).
//
//   build/examples/web_server
#include <cstdio>
#include <map>

#include "core/plexus.h"
#include "drivers/device_profile.h"
#include "drivers/medium.h"
#include "proto/http.h"

int main() {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto costs = sim::CostModel::Default1996();
  const auto profile = drivers::DeviceProfile::Ethernet10();

  core::PlexusHost server(sim, "www-spin", costs, profile,
                          {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost browser(sim, "browser", costs, profile,
                           {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  core::PlexusHost monitor(sim, "monitor", costs, profile,
                           {net::MacAddress::FromId(3), net::Ipv4Address(10, 0, 0, 3), 24});
  for (core::PlexusHost* h : {&server, &browser, &monitor}) {
    h->AttachTo(segment);
    h->ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  }

  // In-kernel "site" with a hit counter.
  std::map<std::string, std::string> site = {
      {"/", "<html>SPIN: www-spin.cs.washington.edu (simulated)</html>"},
      {"/plexus.html", "<html>Plexus: extensible application-specific networking</html>"},
  };
  int hits = 0;
  std::vector<std::unique_ptr<proto::HttpServerConnection>> conns;
  server.tcp().Listen(80, [&](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
    conns.push_back(std::make_unique<proto::HttpServerConnection>(
        *ep, [&](const std::string& path) -> std::optional<std::string> {
          ++hits;
          auto it = site.find(path);
          if (it == site.end()) return std::nullopt;
          return it->second;
        }));
  });

  // An operations monitor queries the hit counter with an active message:
  // the handler runs in the network interrupt on the server (EPHEMERAL) —
  // the lowest-latency query path the architecture offers.
  server.active_messages().RegisterHandler(
      1, [&](net::MacAddress from, std::uint32_t, std::uint32_t, std::span<const std::byte>) {
        server.active_messages().Send(from, 2, static_cast<std::uint32_t>(hits), 0);
      });
  std::uint32_t monitored_hits = 0;
  double am_rtt_us = -1;
  sim::TimePoint am_sent;
  monitor.active_messages().RegisterHandler(
      2, [&](net::MacAddress, std::uint32_t count, std::uint32_t, std::span<const std::byte>) {
        monitored_hits = count;
        am_rtt_us = (sim.Now() - am_sent).us();
      });

  // The browser fetches three URLs in sequence.
  const char* urls[] = {"/", "/plexus.html", "/missing.html"};
  int url_index = 0;
  std::shared_ptr<core::PlexusTcpEndpoint> conn;
  std::unique_ptr<proto::HttpClient> http;
  std::function<void()> fetch_next = [&] {
    if (url_index >= 3) {
      // All pages fetched: the monitor polls the hit counter.
      monitor.Run([&] {
        am_sent = sim.Now();
        monitor.active_messages().Send(net::MacAddress::FromId(1), 1, 0, 0);
      });
      return;
    }
    const std::string url = urls[url_index++];
    browser.Run([&, url] {
      conn = browser.tcp().Connect(net::Ipv4Address(10, 0, 0, 1), 80);
      http = std::make_unique<proto::HttpClient>(
          *conn, [&, url](const proto::HttpClient::Response& r) {
            std::printf("GET %-14s -> %d (%zu bytes)\n", url.c_str(), r.status, r.body.size());
            fetch_next();
          });
      conn->SetOnEstablished([&, url] { http->Get(url); });
    });
  };
  fetch_next();
  sim.RunFor(sim::Duration::Seconds(30));

  std::printf("\nactive-message hit-counter query: %u hits, rtt %.1f us "
              "(handled at interrupt level)\n",
              monitored_hits, am_rtt_us);
  return 0;
}
