// Active messages at interrupt level (Section 3.3): a tiny remote-memory
// service where request handlers run inside the network interrupt — "little
// more than reference memory and reply with an acknowledgement" — plus a
// demonstration of the EPHEMERAL time budget terminating a misbehaving
// handler.
//
//   build/examples/active_messages
#include <array>
#include <cstdio>

#include "core/plexus.h"
#include "drivers/device_profile.h"
#include "drivers/medium.h"
#include "spin/event.h"

namespace {
constexpr std::uint16_t kReadWord = 1;   // request: read table[arg0]
constexpr std::uint16_t kReadReply = 2;  // reply: value in arg0
}  // namespace

int main() {
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto costs = sim::CostModel::Default1996();
  const auto profile = drivers::DeviceProfile::Ethernet10();
  core::PlexusHost node0(sim, "node0", costs, profile,
                         {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost node1(sim, "node1", costs, profile,
                         {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  node0.AttachTo(segment);
  node1.AttachTo(segment);

  // node1 exposes a word-addressable table through an active-message
  // handler. The handler only references memory and replies — a model
  // EPHEMERAL citizen.
  std::array<std::uint32_t, 8> table = {10, 20, 30, 40, 50, 60, 70, 80};
  node1.active_messages().RegisterHandler(
      kReadWord, [&](net::MacAddress from, std::uint32_t index, std::uint32_t tag,
                     std::span<const std::byte>) {
        const std::uint32_t value = index < table.size() ? table[index] : 0;
        node1.active_messages().Send(from, kReadReply, value, tag);
      });

  // node0 issues reads and measures the interrupt-level round trip.
  int outstanding = 4;
  sim::TimePoint sent_at;
  node0.active_messages().RegisterHandler(
      kReadReply, [&](net::MacAddress, std::uint32_t value, std::uint32_t tag,
                      std::span<const std::byte>) {
        std::printf("table[%u] = %-3u  (rtt %.1f us, handled in the interrupt)\n", tag, value,
                    (sim.Now() - sent_at).us());
        if (--outstanding > 0) {
          node0.Run([&, tag] {
            sent_at = sim.Now();
            node0.active_messages().Send(net::MacAddress::FromId(2), kReadWord, tag + 1,
                                         tag + 1);
          });
        }
      });
  node0.Run([&] {
    sent_at = sim.Now();
    node0.active_messages().Send(net::MacAddress::FromId(2), kReadWord, 0, 0);
  });
  sim.RunFor(sim::Duration::Seconds(5));

  // --- A misbehaving handler under a time budget -----------------------------
  // The manager assigns a 50us limit; the handler declares a 2ms cost.
  // Plexus terminates it instead of letting it hold the interrupt.
  std::printf("\ninstalling a 2ms handler under a 50us interrupt budget...\n");
  int terminated = 0;
  spin::HandlerOptions opts;
  opts.ephemeral = true;
  opts.name = "hog";
  opts.declared_cost = sim::Duration::Millis(2);
  opts.time_limit = sim::Duration::Micros(50);
  opts.on_terminated = [&] { ++terminated; };
  auto r = node1.ethernet().InstallTypeHandler(
      net::ethertype::kActiveMessage,
      [](const net::Mbuf&, const net::EthernetHeader&) { /* never completes */ }, opts);
  if (!r.ok()) {
    std::printf("install failed: %s\n", r.error().message.c_str());
    return 1;
  }
  node0.Run([&] {
    sent_at = sim.Now();
    node0.active_messages().Send(net::MacAddress::FromId(2), kReadWord, 1, 99);
  });
  sim.RunFor(sim::Duration::Seconds(1));
  std::printf("hog handler terminations: %d (the well-behaved AM handler still ran)\n",
              terminated);
  return terminated == 1 ? 0 : 1;
}
