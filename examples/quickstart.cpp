// Quickstart: two simulated workstations running SPIN/Plexus, a custom
// in-kernel UDP echo extension on one, and a client endpoint on the other.
//
//   build/examples/quickstart
//
// Walks through the core API: building a network, claiming UDP endpoints
// through the protocol manager (openness: no privilege needed), installing
// an EPHEMERAL receive handler that runs at interrupt level, and measuring
// application-to-application round-trip latency on the virtual clock.
#include <cstdio>

#include "core/plexus.h"
#include "drivers/device_profile.h"
#include "drivers/medium.h"

int main() {
  // 1. A simulator owns virtual time; hosts and media attach to it.
  sim::Simulator sim;
  drivers::EthernetSegment ethernet(sim);

  // 2. Two DEC-Alpha-class workstations running SPIN/Plexus on 10 Mb/s
  //    Ethernet, with the cost model calibrated to the paper's 1996 testbed.
  core::PlexusHost alpha(sim, "alpha", sim::CostModel::Default1996(),
                         drivers::DeviceProfile::Ethernet10(),
                         {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost beta(sim, "beta", sim::CostModel::Default1996(),
                        drivers::DeviceProfile::Ethernet10(),
                        {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  alpha.AttachTo(ethernet);
  beta.AttachTo(ethernet);
  alpha.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);  // on-link
  beta.ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);

  // 3. The echo "application" is a kernel extension on beta: it claims UDP
  //    port 7 from the protocol manager and installs an EPHEMERAL handler.
  //    The manager builds the port guard — the handler cannot snoop other
  //    ports — and the endpoint cannot spoof its source address.
  auto echo = beta.udp().CreateEndpoint(7).value();
  spin::HandlerOptions opts;
  opts.ephemeral = true;  // may run inside the network interrupt
  opts.name = "udp-echo";
  auto installed = echo->InstallReceiveHandler(
      [&echo](const net::Mbuf& payload, const proto::UdpDatagram& info) {
        // READONLY buffer: DeepCopy before reuse, then reflect it.
        echo->Send(payload.DeepCopy(), info.src_ip, info.src_port);
      },
      opts);
  if (!installed.ok()) {
    std::fprintf(stderr, "install failed: %s\n", installed.error().message.c_str());
    return 1;
  }

  // 4. The client on alpha: send pings, timestamp with the virtual clock.
  auto client = alpha.udp().CreateEndpoint(5000).value();
  int replies = 0;
  double total_us = 0;
  sim::TimePoint sent_at;
  std::function<void()> ping = [&] {
    alpha.Run([&] {
      sent_at = sim.Now();
      client->Send(net::Mbuf::FromString("hello, plexus!"), net::Ipv4Address(10, 0, 0, 2), 7);
    });
  };
  (void)client->InstallReceiveHandler(
      [&](const net::Mbuf& payload, const proto::UdpDatagram&) {
        const double rtt = (sim.Now() - sent_at).us();
        std::printf("reply %d: %-16s rtt = %.1f us%s\n", replies + 1,
                    payload.ToString().c_str(), rtt, replies == 0 ? "  (includes ARP)" : "");
        if (replies > 0) total_us += rtt;
        if (++replies < 5) ping();
      },
      opts);

  ping();
  sim.RunFor(sim::Duration::Seconds(5));

  std::printf("\naverage rtt (after ARP warmup): %.1f us  — the paper reports <600 us\n",
              total_us / (replies - 1));
  std::printf("dispatcher: %llu raises, %llu guard evaluations, %llu handler invocations\n",
              static_cast<unsigned long long>(beta.dispatcher().stats().raises),
              static_cast<unsigned long long>(beta.dispatcher().stats().guard_evals),
              static_cast<unsigned long long>(beta.dispatcher().stats().handler_invocations));
  return 0;
}
