// netperf: a command-line measurement tool over the simulated testbed.
//
//   build/examples/netperf [--device eth|atm|t3] [--system plexus|du|both]
//                          [--test rtt|stream] [--bytes N] [--payload N]
//                          [--mode interrupt|thread] [--checksum on|off]
//
// Examples:
//   netperf --device atm --test stream            # TCP throughput on ATM
//   netperf --device t3 --test rtt --payload 8    # Figure-5-style UDP RTT
//   netperf --system plexus --mode thread         # thread-per-raise handlers
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"

namespace {

struct Options {
  std::string device = "eth";
  std::string system = "both";
  std::string test = "rtt";
  std::size_t bytes = 4 * 1024 * 1024;
  std::size_t payload = 8;
  std::string mode = "interrupt";
  bool checksum = true;
};

bool Parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--device") {
      const char* v = next();
      if (!v) return false;
      opt.device = v;
    } else if (arg == "--system") {
      const char* v = next();
      if (!v) return false;
      opt.system = v;
    } else if (arg == "--test") {
      const char* v = next();
      if (!v) return false;
      opt.test = v;
    } else if (arg == "--bytes") {
      const char* v = next();
      if (!v) return false;
      opt.bytes = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--payload") {
      const char* v = next();
      if (!v) return false;
      opt.payload = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return false;
      opt.mode = v;
    } else if (arg == "--checksum") {
      const char* v = next();
      if (!v) return false;
      opt.checksum = std::strcmp(v, "off") != 0;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

drivers::DeviceProfile ProfileFor(const std::string& device) {
  if (device == "atm") return drivers::DeviceProfile::ForeAtm155();
  if (device == "t3") return drivers::DeviceProfile::DecT3();
  return drivers::DeviceProfile::Ethernet10();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!Parse(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: netperf [--device eth|atm|t3] [--system plexus|du|both]\n"
                 "               [--test rtt|stream] [--bytes N] [--payload N]\n"
                 "               [--mode interrupt|thread] [--checksum on|off]\n");
    return 2;
  }
  const auto profile = ProfileFor(opt.device);
  const auto costs = sim::CostModel::Default1996();
  const auto mode =
      opt.mode == "thread" ? core::HandlerMode::kThread : core::HandlerMode::kInterrupt;

  std::printf("netperf: device=%s test=%s (1996 calibrated cost model)\n",
              profile.name.c_str(), opt.test.c_str());

  const bool run_plexus = opt.system == "plexus" || opt.system == "both";
  const bool run_du = opt.system == "du" || opt.system == "both";

  if (opt.test == "rtt") {
    std::printf("UDP round trip, %zu-byte payload:\n", opt.payload);
    if (run_plexus) {
      const double rtt = bench::PlexusUdpRttUs(profile, costs, mode, opt.payload);
      std::printf("  SPIN/Plexus (%s handlers): %8.1f us\n", opt.mode.c_str(), rtt);
    }
    if (run_du) {
      const double rtt = bench::OsUdpRttUs(profile, costs, opt.payload);
      std::printf("  DIGITAL UNIX (sockets):      %8.1f us\n", rtt);
    }
    const double drv = bench::DriverUdpRttUs(profile, costs, opt.payload);
    std::printf("  driver-to-driver floor:      %8.1f us\n", drv);
  } else if (opt.test == "stream") {
    std::printf("TCP bulk transfer, %zu bytes:\n", opt.bytes);
    if (run_plexus) {
      const double mbps = bench::PlexusTcpThroughputMbps(profile, costs, opt.bytes);
      std::printf("  SPIN/Plexus:        %8.1f Mb/s\n", mbps);
    }
    if (run_du) {
      const double mbps = bench::OsTcpThroughputMbps(profile, costs, opt.bytes);
      std::printf("  DIGITAL UNIX:       %8.1f Mb/s\n", mbps);
    }
    const double drv = bench::DriverThroughputMbps(profile, costs, opt.bytes);
    std::printf("  driver-to-driver:   %8.1f Mb/s\n", drv);
  } else {
    std::fprintf(stderr, "unknown test: %s\n", opt.test.c_str());
    return 2;
  }
  return 0;
}
