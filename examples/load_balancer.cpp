// The Section 5.2 forwarding protocol as a load balancer: a Plexus host
// redirects TCP connections arriving on port 80 to a backend server, inside
// the protocol graph, preserving end-to-end TCP semantics — then the same
// topology with the user-level splice for comparison.
//
//   build/examples/load_balancer
#include <cstdio>

#include "app/forwarder.h"
#include "bench/bench_common.h"
#include "core/plexus.h"
#include "drivers/device_profile.h"
#include "drivers/medium.h"
#include "proto/http.h"

int main() {
  std::printf("In-kernel TCP forwarding (load-balancer front end)\n\n");

  // --- Functional demo: HTTP through the Plexus forwarder ------------------
  sim::Simulator sim;
  drivers::EthernetSegment segment(sim);
  const auto profile = drivers::DeviceProfile::Ethernet10();
  const auto costs = sim::CostModel::Default1996();
  core::PlexusHost client(sim, "client", costs, profile,
                          {net::MacAddress::FromId(1), net::Ipv4Address(10, 0, 0, 1), 24});
  core::PlexusHost balancer(sim, "balancer", costs, profile,
                            {net::MacAddress::FromId(2), net::Ipv4Address(10, 0, 0, 2), 24});
  core::PlexusHost backend(sim, "backend", costs, profile,
                           {net::MacAddress::FromId(3), net::Ipv4Address(10, 0, 0, 3), 24});
  for (core::PlexusHost* h : {&client, &balancer, &backend}) {
    h->AttachTo(segment);
    h->ip_layer().routes().Add(net::Ipv4Address(10, 0, 0, 0), 24);
  }

  // The balancer installs a forwarding node into its protocol graph: all
  // packets for port 80 are redirected to the backend.
  app::PlexusTcpForwarder forwarder(balancer, 80, net::Ipv4Address(10, 0, 0, 3), 8080);

  // A real HTTP server runs on the backend.
  std::vector<std::unique_ptr<proto::HttpServerConnection>> server_conns;
  backend.tcp().Listen(8080, [&](std::shared_ptr<core::PlexusTcpEndpoint> ep) {
    server_conns.push_back(std::make_unique<proto::HttpServerConnection>(
        *ep, [](const std::string& path) -> std::optional<std::string> {
          return "served by backend 10.0.0.3, path=" + path;
        }));
  });

  // The client fetches from the BALANCER's address.
  std::shared_ptr<core::PlexusTcpEndpoint> conn;
  std::unique_ptr<proto::HttpClient> http;
  proto::HttpClient::Response response;
  client.Run([&] {
    conn = client.tcp().Connect(net::Ipv4Address(10, 0, 0, 2), 80);
    http = std::make_unique<proto::HttpClient>(
        *conn, [&](const proto::HttpClient::Response& r) { response = r; });
    conn->SetOnEstablished([&] { http->Get("/index.html"); });
  });
  sim.RunFor(sim::Duration::Seconds(10));

  std::printf("GET http://10.0.0.2/index.html -> %d: \"%s\"\n", response.status,
              response.body.c_str());
  std::printf("forwarder: %llu packets client->backend, %llu backend->client, %llu flow(s);\n"
              "the balancer terminated %zu TCP connections itself (zero — SYN/FIN pass through)\n\n",
              static_cast<unsigned long long>(forwarder.stats().forwarded),
              static_cast<unsigned long long>(forwarder.stats().returned),
              static_cast<unsigned long long>(forwarder.stats().flows),
              balancer.tcp().demux().connection_count());

  // --- Latency comparison against the user-level splice (Figure 7) ---------
  const auto plexus = bench::PlexusForwarding(costs);
  const auto du = bench::DuForwarding(costs);
  std::printf("8-byte request/response RTT through the forwarding host:\n");
  std::printf("  Plexus in-graph redirect:      %8.1f us\n", plexus.request_rtt_us);
  std::printf("  DIGITAL UNIX user-level splice:%8.1f us  (%.2fx slower)\n", du.request_rtt_us,
              du.request_rtt_us / plexus.request_rtt_us);
  return 0;
}
